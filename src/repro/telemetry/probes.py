"""Sim-clock sampling probes.

A :class:`TimeSeriesProbe` samples a set of zero-argument callables
into :class:`~repro.telemetry.instruments.TimeSeries` reservoirs at a
fixed *simulated* interval.  Sampling events ride the normal event
heap: they read state, never mutate it, and draw from no RNG stream,
so attaching a probe cannot change protocol behaviour — only
``events_processed`` grows.  ``stop()`` cancels the timer, which
sessions call from ``close()`` so a finished session leaves the heap
drainable.
"""

from __future__ import annotations

from typing import Any, Callable

from ..simulator.engine import Simulator, Timer

__all__ = ["TimeSeriesProbe", "NullProbe"]


class TimeSeriesProbe:
    """Periodic sampler bound to a registry's time series."""

    def __init__(self, sim: Simulator, registry: Any, interval: float,
                 max_points: int = 512):
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.max_points = max_points
        self.samples_taken = 0
        self._sources: list[tuple[Any, Callable[[], float]]] = []
        self._timer = Timer(sim, self._fire)
        registry.add_probe(self)

    def sample(self, name: str, fn: Callable[[], float]) -> "TimeSeriesProbe":
        """Add a series: ``fn()`` is recorded under ``name`` each tick."""
        series = self.registry.timeseries(name, self.max_points)
        self._sources.append((series, fn))
        return self

    def start(self, delay: float | None = None) -> "TimeSeriesProbe":
        """Arm the first tick ``delay`` (default: one interval) from now."""
        self._timer.restart(self.interval if delay is None else delay)
        return self

    def stop(self) -> None:
        self._timer.cancel()

    @property
    def running(self) -> bool:
        return self._timer.armed

    def _fire(self) -> None:
        now = self.sim.now
        for series, fn in self._sources:
            series.append(now, fn())
        self.samples_taken += 1
        self._timer.restart(self.interval)


class NullProbe:
    """Disabled probe: accepts the same calls, schedules nothing."""

    __slots__ = ()
    samples_taken = 0
    running = False

    def sample(self, name: str, fn: Callable[[], float]) -> "NullProbe":
        return self

    def start(self, delay: float | None = None) -> "NullProbe":
        return self

    def stop(self) -> None:
        pass


NULL_PROBE = NullProbe()


def make_probe(sim: Simulator, registry: Any, interval: float,
               max_points: int = 512):
    """Probe factory honouring disabled registries: a
    :class:`~repro.telemetry.registry.NullRegistry` gets a
    :class:`NullProbe` (no timer, no heap events)."""
    if not getattr(registry, "enabled", False):
        return NULL_PROBE
    return TimeSeriesProbe(sim, registry, interval, max_points)
