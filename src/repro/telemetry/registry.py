"""The metrics registry and its disabled twin.

A :class:`MetricsRegistry` is the single container every protocol
component writes into (or is *read from* — see below) for one session,
flow, or network.  Instruments come in two flavours:

* **push** instruments (``counter`` / ``gauge`` / ``histogram`` /
  ``timeseries``): get-or-create by name, mutate from the hot path.
  Used only for low-rate events (repair completions, span edges).
* **pull** bindings (``bind(name, fn)``): a zero-argument callable
  sampled at :meth:`snapshot` time.  This is how the pre-existing
  plain-attribute counters (``sender.odata_sent`` and friends) are
  re-wired without adding a single instruction to the paths that
  increment them — the registry reads the attribute when asked.

Sim-clock sampling probes (:class:`~repro.telemetry.probes
.TimeSeriesProbe`) register themselves via :meth:`add_probe` so
:meth:`close` can cancel their timers (sessions must leave the event
heap drainable on close).

:class:`NullRegistry` is the disabled backend: same surface, shared
no-op instruments, no bindings, no probes, no sampling events.  A
session built with telemetry disabled therefore runs byte-identically
to one built before this layer existed.

Export schema ``pgmcc.session-metrics/v1`` (:meth:`MetricsRegistry
.export`)::

    {
      "schema": "pgmcc.session-metrics/v1",
      "enabled": true,
      "meta": {...},                    # tsi, group, caller-supplied
      "counters": {name: int},          # push + pull-bound counters
      "gauges": {name: number},
      "histograms": {name: {count, total, min, max, mean, p50, p90, p99}},
      "series": {name: {count, stride, points: [[t, v], ...]}},
      "spans": {"stats": {name: {count, total_s, mean_s, max_s}},
                 "open": [name, ...]}
    }

Every value derives from simulated state (sim clock, protocol
counters), never from wall time, so the document is deterministic for
a fixed seed and digest-stable across ``-j1`` / ``-jN`` runner sweeps.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .instruments import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMESERIES,
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
)

METRICS_SCHEMA = "pgmcc.session-metrics/v1"

__all__ = ["METRICS_SCHEMA", "MetricsRegistry", "NullRegistry",
           "SpanTracker", "NullSpanTracker", "as_registry"]


class SpanTracker:
    """Named interval timing on an external (simulated) clock.

    ``begin``/``end`` take the current time explicitly so the tracker
    works with any clock source and stays trivially deterministic.
    ``begin`` on an open span restarts it; ``end`` without a matching
    ``begin`` is a no-op — protocol phase edges (slow start ending,
    recovery re-entered) are naturally idempotent that way.
    """

    __slots__ = ("_open", "_stats")

    def __init__(self) -> None:
        self._open: dict[str, float] = {}
        #: name -> [count, total, max]
        self._stats: dict[str, list[float]] = {}

    def begin(self, name: str, now: float) -> None:
        self._open[name] = now

    def end(self, name: str, now: float) -> None:
        started = self._open.pop(name, None)
        if started is None:
            return
        elapsed = now - started
        stats = self._stats.get(name)
        if stats is None:
            self._stats[name] = [1, elapsed, elapsed]
        else:
            stats[0] += 1
            stats[1] += elapsed
            if elapsed > stats[2]:
                stats[2] = elapsed

    def close_all(self, now: float) -> None:
        """End every open span (session teardown)."""
        for name in list(self._open):
            self.end(name, now)

    @property
    def open(self) -> list[str]:
        return sorted(self._open)

    def stats(self, name: str) -> Optional[dict[str, float]]:
        stats = self._stats.get(name)
        if stats is None:
            return None
        count, total, peak = stats
        return {"count": int(count), "total_s": total,
                "mean_s": total / count, "max_s": peak}

    def snapshot(self) -> dict[str, Any]:
        return {
            "stats": {name: self.stats(name) for name in sorted(self._stats)},
            "open": self.open,
        }


class NullSpanTracker:
    __slots__ = ()
    open: list[str] = []

    def begin(self, name: str, now: float) -> None:
        pass

    def end(self, name: str, now: float) -> None:
        pass

    def close_all(self, now: float) -> None:
        pass

    def stats(self, name: str) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"stats": {}, "open": []}


class MetricsRegistry:
    """Per-session metric container (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}
        #: pull bindings: name -> (kind, fn)
        self._bindings: dict[str, tuple[str, Callable[[], float]]] = {}
        self._probes: list[Any] = []
        self.spans = SpanTracker()
        #: identification fields copied into the export document
        self.meta: dict[str, Any] = {}

    # -- push instruments (get-or-create) ------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, max_samples: int = 512) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, max_samples)
        return inst

    def timeseries(self, name: str, max_points: int = 512) -> TimeSeries:
        inst = self._series.get(name)
        if inst is None:
            inst = self._series[name] = TimeSeries(name, max_points)
        return inst

    # -- pull bindings --------------------------------------------------

    def bind(self, name: str, fn: Callable[[], float],
             kind: str = "counter") -> None:
        """Register ``fn`` to be sampled into ``name`` at snapshot time.

        ``kind`` is ``"counter"`` (monotone count) or ``"gauge"``
        (point-in-time value) — it only decides which export section
        the value lands in.
        """
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unknown binding kind {kind!r}")
        self._bindings[name] = (kind, fn)

    # -- probes ---------------------------------------------------------

    def add_probe(self, probe: Any) -> Any:
        """Track a sampling probe so :meth:`close` stops it."""
        self._probes.append(probe)
        return probe

    def close(self) -> None:
        """Stop every sampling probe (cancels their timers)."""
        for probe in self._probes:
            probe.stop()

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        counters = {name: c.value for name, c in self._counters.items()}
        gauges = {name: g.value for name, g in self._gauges.items()}
        for name, (kind, fn) in self._bindings.items():
            (counters if kind == "counter" else gauges)[name] = fn()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
            "series": {name: s.snapshot()
                       for name, s in sorted(self._series.items())},
            "spans": self.spans.snapshot(),
        }

    def export(self, **meta: Any) -> dict[str, Any]:
        """The versioned ``pgmcc.session-metrics/v1`` document."""
        doc: dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "enabled": True,
            "meta": {**self.meta, **meta},
        }
        doc.update(self.snapshot())
        return doc


class NullRegistry:
    """Disabled telemetry: the same surface, none of the work."""

    enabled = False

    def __init__(self) -> None:
        self.spans = NullSpanTracker()
        self.meta: dict[str, Any] = {}

    def counter(self, name: str):
        return NULL_COUNTER

    def gauge(self, name: str):
        return NULL_GAUGE

    def histogram(self, name: str, max_samples: int = 512):
        return NULL_HISTOGRAM

    def timeseries(self, name: str, max_points: int = 512):
        return NULL_TIMESERIES

    def bind(self, name: str, fn: Callable[[], float],
             kind: str = "counter") -> None:
        pass

    def add_probe(self, probe: Any) -> Any:
        return probe

    def close(self) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {},
                "series": {}, "spans": {"stats": {}, "open": []}}

    def export(self, **meta: Any) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "enabled": False,
            "meta": {**self.meta, **meta},
        }
        doc.update(self.snapshot())
        return doc


def as_registry(telemetry: Any) -> "MetricsRegistry | NullRegistry":
    """Normalise a user-facing ``telemetry`` option.

    ``True`` -> fresh :class:`MetricsRegistry`; ``False``/``None`` ->
    fresh :class:`NullRegistry`; an existing registry passes through
    (caller-managed, e.g. shared across sessions).
    """
    if telemetry is True:
        return MetricsRegistry()
    if telemetry is False or telemetry is None:
        return NullRegistry()
    if isinstance(telemetry, (MetricsRegistry, NullRegistry)):
        return telemetry
    raise TypeError(
        f"telemetry must be bool or a registry, got {type(telemetry).__name__}"
    )
