"""Metric instruments: counters, gauges, histograms, time series.

Everything here is sized for *in-simulation* instrumentation: values
come off the deterministic event loop, so reservoirs must stay
deterministic too.  Bounded storage uses stride decimation — when a
reservoir fills, every other retained sample is dropped and the
sampling stride doubles — which keeps memory O(max_samples) for
arbitrarily long runs while remaining a pure function of the observed
sequence (no RNG, no wall clock; identical runs yield identical
reservoirs).

Each instrument has a null twin with the same method surface whose
mutators are no-ops; :class:`~repro.telemetry.registry.NullRegistry`
hands those out so disabled-telemetry code paths pay one no-op call at
most, and usually nothing (registry bindings are pull-based and never
installed when disabled).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullTimeSeries",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMESERIES",
]

#: default reservoir capacity (samples or points) per instrument
DEFAULT_RESERVOIR = 512


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution with exact count/sum/min/max and a bounded,
    deterministic reservoir for percentile estimates.

    The reservoir keeps every ``stride``-th observation; on overflow it
    drops every other retained sample and doubles the stride, so it is
    always a uniform-in-index subsample of the full stream.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "max_samples", "_samples", "_stride", "_phase")

    def __init__(self, name: str, max_samples: int = DEFAULT_RESERVOIR):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir (q in [0, 100])."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[max(rank, 0)]

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean}>"


class TimeSeries:
    """(time, value) samples with the same stride-decimated bound.

    Built for sim-clock probes: `append` is called at a fixed simulated
    interval, and the reservoir thins itself to at most ``max_points``
    while preserving uniform temporal coverage of the whole run.
    """

    __slots__ = ("name", "count", "max_points", "_points", "_stride", "_phase")

    def __init__(self, name: str, max_points: int = DEFAULT_RESERVOIR):
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        self.name = name
        self.count = 0
        self.max_points = max_points
        self._points: list[tuple[float, float]] = []
        self._stride = 1
        self._phase = 0

    def append(self, t: float, value: float) -> None:
        self.count += 1
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._points.append((t, value))
            if len(self._points) >= self.max_points:
                self._points = self._points[::2]
                self._stride *= 2

    @property
    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    def last(self) -> Optional[tuple[float, float]]:
        return self._points[-1] if self._points else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "stride": self._stride,
            "points": [[t, v] for t, v in self._points],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name} n={self.count}>"


# -- null twins ---------------------------------------------------------------


class NullCounter:
    """No-op :class:`Counter` stand-in (shared singleton)."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> float:
        return 0.0


class NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"count": 0, "total": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p90": None, "p99": None}


class NullTimeSeries:
    __slots__ = ()
    name = ""
    count = 0

    def append(self, t: float, value: float) -> None:
        pass

    @property
    def points(self) -> list:
        return []

    def last(self) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"count": 0, "stride": 1, "points": []}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
NULL_TIMESERIES = NullTimeSeries()
