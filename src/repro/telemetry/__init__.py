"""Unified telemetry: metric registries, instruments, spans, probes.

The layer every figure in the paper is read off: protocol components
expose their state through per-session :class:`MetricsRegistry`
objects (``PgmSession.metrics``), exported as versioned
``pgmcc.session-metrics/v1`` documents that flow through experiment
results, runner manifests and ``results/BENCH_RESULTS.json``.

Public surface::

    from repro.telemetry import (
        MetricsRegistry, NullRegistry, METRICS_SCHEMA,
        Counter, Gauge, Histogram, TimeSeries,
        SpanTracker, TimeSeriesProbe, make_probe, as_registry,
    )

Design rules:

* hot-path counters stay plain attributes; registries *pull* them via
  ``bind(name, fn)`` at snapshot time — instrumentation adds nothing
  to the paths that increment them;
* push instruments (histograms, spans, series) are reserved for
  low-rate events and are no-ops under :class:`NullRegistry`;
* every recorded value derives from simulated state, never wall time,
  so exports are deterministic and digest-stable across ``-j``;
* bounded reservoirs (stride decimation) cap memory for arbitrarily
  long runs without sacrificing determinism.

``python -m repro.telemetry.overhead`` measures the events/sec probe
with telemetry off vs. on (the CI smoke gates disabled-mode cost).
"""

from .instruments import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMESERIES,
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullTimeSeries,
    TimeSeries,
)
from .probes import NullProbe, TimeSeriesProbe, make_probe
from .registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    NullRegistry,
    NullSpanTracker,
    SpanTracker,
    as_registry,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NullRegistry",
    "SpanTracker",
    "NullSpanTracker",
    "as_registry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullTimeSeries",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMESERIES",
    "TimeSeriesProbe",
    "NullProbe",
    "make_probe",
]
