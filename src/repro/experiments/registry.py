"""The experiment registry: ``register_experiment`` and lookups.

Mirrors the controller registry
(:func:`repro.core.controller.register_controller`): experiments are
registered process-globally by id, so third-party code can add its own
entries without editing ``run_all.py``::

    from repro.experiments.registry import register_experiment
    from repro.experiments.common import ExperimentSpec, ParamSpec

    # plain call with a ready-made spec ...
    register_experiment(ExperimentSpec(
        "EXP-MINE", "mypkg.experiments.mine",
        description="my extension study"))

    # ... or as a decorator on the runner function (the spec's
    # module/func are filled in from the function itself)
    @register_experiment("EXP-OTHER", description="another study",
                         params=(ParamSpec("seed", "int", default=7),))
    def run(scale=1.0, seed=7): ...

Re-registering an id raises — the registry is process-global and a
silent overwrite would poison sweep/digest reproducibility.  The
classic ``run_all.REGISTRY`` remains available as a read-only *view*
of this registry (report entries only, registration order).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable, Iterator, Optional

from .common import ExperimentSpec

__all__ = [
    "RegistryView",
    "experiment_ids",
    "get_experiment",
    "register_experiment",
    "registered_specs",
    "resolve_experiment_id",
    "schema_for_target",
]

_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec | str | None = None,
                        /, **fields: Any):
    """Register an experiment; also usable as a decorator.

    Three spellings:

    * ``register_experiment(ExperimentSpec(...))`` — plain call;
    * ``register_experiment("EXP-X", module=..., func=..., ...)`` —
      keyword construction;
    * ``@register_experiment("EXP-X", ...)`` above the runner function
      — ``module``/``func`` come from the function itself and the
      function is returned unchanged.

    Raises ``ValueError`` on a duplicate id.
    """
    if isinstance(spec, ExperimentSpec):
        _add(spec)
        return spec
    if spec is None:
        raise TypeError("register_experiment needs an ExperimentSpec "
                        "or an experiment id")
    exp_id = spec

    if "module" in fields:
        registered = ExperimentSpec(exp_id, **fields)
        _add(registered)
        return registered

    def decorator(fn: Callable) -> Callable:
        _add(ExperimentSpec(exp_id, module=fn.__module__,
                            func=fn.__qualname__, **fields))
        return fn

    return decorator


def _add(spec: ExperimentSpec) -> None:
    existing = _REGISTRY.get(spec.id)
    if existing is not None:
        if existing == spec:
            # idempotent: the exact same spec registered again.  This
            # happens legitimately when run_all executes both as
            # __main__ (python -m repro.experiments.run_all) and under
            # its canonical import name in the same process.
            return
        raise ValueError(
            f"experiment {spec.id!r} is already registered "
            f"(by {existing.module}); ids are process-global")
    _REGISTRY[spec.id] = spec


def _ensure_builtins() -> None:
    """Import ``run_all`` so the built-in specs are registered before
    any lookup — a sweep or cache query may be the process's first
    touch of the experiment layer."""
    from . import run_all  # noqa: F401 - import-for-side-effect

    del run_all


def registered_specs(include_hidden: bool = False) -> list[ExperimentSpec]:
    """Registered specs in registration order (report entries only by
    default; ``include_hidden=True`` adds sweep-cell entries)."""
    _ensure_builtins()
    return [s for s in _REGISTRY.values() if include_hidden or not s.hidden]


def experiment_ids(include_hidden: bool = False) -> list[str]:
    return [s.id for s in registered_specs(include_hidden)]


def resolve_experiment_id(exp_id: str) -> Optional[str]:
    """Canonical id for a case-/separator-insensitive spelling
    (``exp_arena`` == ``exp-arena`` == ``EXP-ARENA``), else None."""
    _ensure_builtins()
    canonical = {key.upper().replace("_", "-"): key for key in _REGISTRY}
    return canonical.get(str(exp_id).upper().replace("_", "-"))


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Spec for an id (normalized spelling accepted).  Raises
    ``KeyError`` listing the known ids on an unknown one."""
    resolved = resolve_experiment_id(exp_id)
    if resolved is None:
        raise KeyError(
            f"unknown experiment id(s): {exp_id}; "
            f"known ids: {', '.join(_REGISTRY)}")
    return _REGISTRY[resolved]


def schema_for_target(target: str) -> Optional[list[dict[str, Any]]]:
    """Declared parameter schema for a ``module:func`` target string.

    This is how the result cache folds the schema into its fingerprint
    without knowing about specs: both the orchestrator (which has the
    spec) and ``ResultCache.fetch_or_run`` (which has only the
    callable) resolve the same schema for the same target, keeping
    their cache keys shared.  Returns ``None`` when no registered
    experiment matches the target or the schema is undeclared.
    """
    _ensure_builtins()
    for spec in _REGISTRY.values():
        if f"{spec.module}:{spec.func}" == target and spec.params:
            return spec.schema_doc()
    return None


class RegistryView(Sequence):
    """Read-only, live sequence view of the registry.

    ``run_all.REGISTRY`` is one of these: iteration, ``len``, indexing
    and membership work like the frozen tuple it replaces, but entries
    registered later (third-party experiments) appear without editing
    ``run_all.py``.  Hidden (sweep-cell) entries are excluded, exactly
    like the old report tuple.
    """

    def __getitem__(self, index):
        return registered_specs()[index]

    def __len__(self) -> int:
        return len(registered_specs())

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(registered_specs())

    def __contains__(self, item: object) -> bool:
        return item in registered_specs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegistryView of {len(self)} experiments>"
