"""EXP-ARENA: head-to-head congestion-controller comparison.

The paper's claim is architectural: *any* TCP-compatible window
controller, clocked by the elected acker, makes the whole multicast
group TCP-friendly (§3.4).  The arena tests that the harness can tell
a TCP-friendly controller from an unfriendly one by running every
registered backend (:mod:`repro.core.controller`) through the same
scenario matrix:

``clean-tcp``
    Fig. 4's scene — the session shares the non-lossy bottleneck with
    one TCP flow.  Measures goodput and the TCP-fairness ratio.
``fault``
    The lossy configuration with a mid-run loss burst on the
    bottleneck (an 8 % :class:`LinkImpairment` episode): recovery
    behavior, repair latency and stall time under transient stress.
``adversary``
    Fig. 4's scene plus a greedy acker (ackership capture + optimistic
    ACKs) with the :class:`~repro.pgm.guard.FeedbackGuard` engaged:
    does the controller stay within its fair share while the guard
    quarantines the attacker?

Each controller gets one row in the ranked table: goodput, fairness
ratio (pgmcc-vs-TCP throughput in the shared window), p99 repair
latency and total stall time.  Rank order is fairness first —
``|log2(ratio)|``, how far from an equal split, exactly 0 for perfect
sharing — with goodput as the tie-break, so a controller that starves
TCP (jain, which ignores loss signals) or starves itself ranks below
one that shares.

Two oracle metrics gate the harness itself: ``pgmcc_in_envelope``
(pgmcc's fairness ratio stays inside :data:`PGMCC_FAIRNESS_ENVELOPE`,
the documented claim) and ``discriminates`` (at least one alternative
lands *outside* the envelope — if every controller looked TCP-friendly
the arena would be measuring nothing).

Every session runs under the runtime invariant checker; the sessions
are digest-stable, so the arena's manifest entry is identical across
``-j1`` / ``-jN`` / cached runs.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..analysis import throughput_bps, throughput_ratio
from ..core.controller import controller_names
from ..pgm import create_session
from ..pgm.session import SessionConfig
from ..simulator import (
    LOSSY,
    NON_LOSSY,
    FaultPlan,
    GreedyAcker,
    LinkImpairment,
    dumbbell,
)
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps

#: pgmcc's documented TCP-fairness envelope for the clean-tcp scenario:
#: the session-to-TCP throughput ratio in the shared window.  The paper
#: reports "good sharing ... in all configurations" (§4, Fig. 4); the
#: reproduction's EXP-F4 lands near 1, and this envelope (≈ ±1.3×
#: in log2 terms) is the widest band we still call TCP-friendly.
PGMCC_FAIRNESS_ENVELOPE = (0.4, 2.5)

#: the misbehaving receiver in the adversary scenario
ATTACKER = "r0"

#: scenario ids, in table order
SCENARIOS = ("clean-tcp", "fault", "adversary")


def fairness_score(ratio: float) -> float:
    """Distance from a perfect split: ``|log2(ratio)|`` (0 = equal)."""
    if ratio <= 0:
        return math.inf
    return abs(math.log2(ratio))


def in_envelope(ratio: float) -> bool:
    low, high = PGMCC_FAIRNESS_ENVELOPE
    return low <= ratio <= high


def _scenario_net(scenario: str, duration: float, seed: int,
                  n_receivers: int):
    """Topology + per-scenario extras; returns (net, cfg_kwargs, tcp?)."""
    spec = LOSSY if scenario == "fault" else NON_LOSSY
    net = dumbbell(2, n_receivers + 1, spec, seed=seed)
    cfg: dict[str, Any] = {}
    if scenario == "fault":
        # Mid-run loss burst on the bottleneck: 8% for a fifth of the
        # run, on top of the lossy path's own 3%.
        cfg["faults"] = FaultPlan((
            LinkImpairment("R0", "R1", at=0.4 * duration,
                           duration=0.2 * duration, loss_rate=0.08,
                           both=False),
        ))
    elif scenario == "adversary":
        cfg["faults"] = FaultPlan((GreedyAcker(ATTACKER, at=0.15 * duration),))
        cfg["guard"] = True
        # Bound the optimistic-ACK blow-up so unfriendly controllers
        # terminate in reasonable wall time (same cap as EXP-ADV).
        cfg["max_rate_bps"] = 2_000_000
    tcp_host = f"r{n_receivers}" if scenario != "fault" else None
    return net, cfg, tcp_host


def run_bout(controller: str, scenario: str, duration: float,
             seed: int = 23, n_receivers: int = 4,
             result: Optional[ExperimentResult] = None) -> dict:
    """One controller through one scenario; returns the measurements."""
    net, extra, tcp_host = _scenario_net(scenario, duration, seed, n_receivers)
    session = create_session(
        net, "h0", [f"r{i}" for i in range(n_receivers)],
        config=SessionConfig(
            controller=controller,
            trace_name=f"arena-{controller}-{scenario}",
            check_invariants=True, strict_invariants=False,
            **extra,
        ),
    )
    tcp = None
    if tcp_host is not None:
        tcp = create_tcp_flow(net, "h1", tcp_host, trace_name="tcp")
    net.run(until=duration)
    session.invariants.verify_now()

    t0 = duration / 3.0
    goodput = throughput_bps(session.trace, t0, duration)
    ratio = None
    if tcp is not None:
        ratio = throughput_ratio(goodput, tcp.throughput_bps(t0, duration))
    summary = session.summary()
    repair = summary["repair_latency"]
    stall = summary["phases"].get("stall", {})
    out = {
        "controller": controller,
        "scenario": scenario,
        "goodput_bps": goodput,
        "fairness_ratio": ratio,
        # the histogram snapshot exists with p99=None when no repair
        # completed inside the measurement window (short/clean bouts)
        "repair_p99_s": (repair["p99"] or 0.0) if repair else 0.0,
        "stall_s": stall.get("total_s", 0.0),
        "stalls": summary["stalls"],
        "rdata_sent": summary["rdata_sent"],
        "unrecoverable": summary["unrecoverable_data_loss"],
        "invariant_violations": len(session.invariants.violations),
        "quarantines": (summary["guard"]["quarantines"]
                        if summary["guard"] else 0),
    }
    if result is not None:
        result.attach_telemetry(session, seed=seed, controller=controller,
                                scenario=scenario)
    session.close()
    if tcp is not None:
        tcp.close()
    return out


def rank_controllers(bouts: dict[tuple[str, str], dict]) -> list[dict]:
    """Aggregate per-controller rows, ranked fairest-first.

    Sort key: fairness distance in the clean-tcp scenario (the paper's
    headline claim), then higher goodput.  Deterministic: ties beyond
    that break on the controller name.
    """
    rows = []
    controllers = sorted({c for c, _ in bouts})
    for name in controllers:
        clean = bouts[(name, "clean-tcp")]
        fault = bouts[(name, "fault")]
        adv = bouts[(name, "adversary")]
        ratio = clean["fairness_ratio"]
        rows.append({
            "controller": name,
            "fairness_ratio": round(ratio, 3),
            "fairness_score": round(fairness_score(ratio), 3),
            "tcp_friendly": in_envelope(ratio),
            "goodput_kbps": kbps(clean["goodput_bps"]),
            "fault_goodput_kbps": kbps(fault["goodput_bps"]),
            "adv_ratio": round(adv["fairness_ratio"], 3),
            "repair_p99_ms": round(1e3 * max(
                b["repair_p99_s"] for b in (clean, fault, adv)), 1),
            "stall_s": round(sum(
                b["stall_s"] for b in (clean, fault, adv)), 3),
            "inv_violations": sum(
                b["invariant_violations"] for b in (clean, fault, adv)),
        })
    rows.sort(key=lambda r: (r["fairness_score"], -r["goodput_kbps"],
                             r["controller"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    # rank first in the rendered table
    return [{"rank": r["rank"], **{k: v for k, v in r.items() if k != "rank"}}
            for r in rows]


def run_cell(scale: float = 1.0, seed: int = 23, n_receivers: int = 4,
             controller: str = "pgmcc",
             scenario: str = "clean-tcp") -> ExperimentResult:
    """One arena bout as a standalone experiment (the sweep cell).

    The sweep DSL expands a ``controller x scenario`` grid into these,
    so each bout is cached, isolated and retried independently; the
    full ranked table is then rebuilt by :func:`aggregate_cells`.
    """
    duration = 120.0 * scale
    result = ExperimentResult(
        name=f"arena-cell-{controller}-{scenario}",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers,
                "controller": controller, "scenario": scenario},
        expectation="one cell of the EXP-ARENA scenario matrix",
    )
    bout = run_bout(controller, scenario, duration, seed=seed,
                    n_receivers=n_receivers)
    result.add_row(**bout)
    for key, value in bout.items():
        if key not in ("controller", "scenario"):
            result.metrics[key] = value
    ratio = bout["fairness_ratio"]
    if ratio is not None:
        result.metrics["fairness_score"] = round(fairness_score(ratio), 3)
        result.metrics["in_envelope"] = in_envelope(ratio)
    return result


def aggregate_cells(cells: list) -> dict:
    """Sweep aggregation hook: ranked table from expanded arena cells.

    ``cells`` is ``[(axes_dict, ExperimentResult), ...]`` as handed
    over by :func:`repro.sweep.aggregate.run_custom_aggregate`.  Each
    cell's first row is the raw bout; controllers with all three
    scenarios present get a row in the same ranked table
    :func:`rank_controllers` builds for the monolithic ``run()``.
    """
    bouts: dict[tuple[str, str], dict] = {}
    for _axes, result in cells:
        bout = result.rows[0]
        bouts[(bout["controller"], bout["scenario"])] = bout
    complete = {name for name, _ in bouts
                if all((name, s) in bouts for s in SCENARIOS)}
    rows = rank_controllers({key: bout for key, bout in bouts.items()
                             if key[0] in complete})
    metrics: dict[str, object] = {}
    if "pgmcc" in complete:
        pgmcc_ratio = bouts[("pgmcc", "clean-tcp")]["fairness_ratio"]
        metrics["pgmcc_in_envelope"] = in_envelope(pgmcc_ratio)
        metrics["discriminates"] = any(
            not in_envelope(bouts[(n, "clean-tcp")]["fairness_ratio"])
            for n in complete if n != "pgmcc")
    return {"rows": rows, "metrics": metrics}


def render_markdown(result: ExperimentResult) -> str:
    """The ranked comparison as a standalone markdown report."""
    lines = [
        "# EXP-ARENA — controller head-to-head",
        "",
        f"Scenarios: {', '.join(SCENARIOS)} · "
        f"fairness envelope {PGMCC_FAIRNESS_ENVELOPE[0]}–"
        f"{PGMCC_FAIRNESS_ENVELOPE[1]}",
        "",
    ]
    if result.rows:
        cols = list(result.rows[0].keys())
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in result.rows:
            lines.append("| " + " | ".join(str(row.get(c, "")) for c in cols)
                         + " |")
    lines += [
        "",
        f"- pgmcc in envelope: **{result.metrics.get('pgmcc_in_envelope')}**",
        f"- harness discriminates: **{result.metrics.get('discriminates')}**",
        "",
        result.expectation,
        "",
    ]
    return "\n".join(lines)


def run(scale: float = 1.0, seed: int = 23, n_receivers: int = 4,
        controllers: Optional[tuple[str, ...]] = None) -> ExperimentResult:
    duration = 120.0 * scale
    names = tuple(controllers) if controllers else controller_names()
    result = ExperimentResult(
        name="controller-arena",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers,
                "controllers": list(names), "scenarios": list(SCENARIOS),
                "envelope": list(PGMCC_FAIRNESS_ENVELOPE)},
        expectation=(
            "pgmcc's fairness ratio stays inside the documented envelope "
            "in the clean-tcp scenario while at least one alternative "
            "controller lands outside it (the harness discriminates); "
            "all controllers hold the runtime invariants in every scenario"
        ),
    )
    bouts: dict[tuple[str, str], dict] = {}
    for name in names:
        for scenario in SCENARIOS:
            # Ship one session-metrics document: pgmcc under fault (the
            # scenario whose histograms/spans the table summarizes).
            attach = result if (name == "pgmcc" and scenario == "fault") else None
            bouts[(name, scenario)] = run_bout(
                name, scenario, duration, seed=seed,
                n_receivers=n_receivers, result=attach,
            )
    for row in rank_controllers(bouts):
        result.add_row(**row)
    for (name, scenario), bout in sorted(bouts.items()):
        prefix = f"{name}:{scenario}"
        for key in ("goodput_bps", "fairness_ratio", "repair_p99_s",
                    "stall_s", "stalls", "rdata_sent", "unrecoverable",
                    "invariant_violations", "quarantines"):
            result.metrics[f"{prefix}:{key}"] = bout[key]
    if "pgmcc" in names:
        pgmcc_ratio = bouts[("pgmcc", "clean-tcp")]["fairness_ratio"]
        result.metrics["pgmcc_in_envelope"] = in_envelope(pgmcc_ratio)
        result.metrics["discriminates"] = any(
            not in_envelope(bouts[(n, "clean-tcp")]["fairness_ratio"])
            for n in names if n != "pgmcc"
        )
    result.metrics["markdown_report"] = render_markdown(result)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description="controller arena")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--markdown", type=pathlib.Path, default=None,
                        help="also write the markdown report here")
    args = parser.parse_args()
    result = run(scale=args.scale)
    print(result.report())
    if args.markdown is not None:
        args.markdown.write_text(result.metrics["markdown_report"])
        print(f"markdown report -> {args.markdown}")


if __name__ == "__main__":  # pragma: no cover
    main()
