"""EXP-F5 — Fig. 5: acker selection across independent bottlenecks.

The topology: the pgmcc source feeds PR2 over link L2 (500 kbit/s, 30
slots ≈ 45 KB) and PR1 over link L1 (400 kbit/s, 20 KB); a TCP flow
shares L2.  Both links have 50 ms propagation delay.  Staged events:

1. PR2 starts alone               → session runs at ≈500 kbit/s;
2. PR1 joins                      → acker switches to PR1, ≈400 kbit/s;
3. TCP starts on L2               → L2's fair share drops below L1's
                                    rate, acker moves to PR2, pgmcc at
                                    ≈220 kbit/s (the paper's number);
4. TCP terminates                 → PR2 lets the rate climb toward
                                    500 kbit/s, congesting L1 → acker
                                    returns to PR1, settling ≈400.

The paper ran this with c = 0.75 and reports identical results from
the real implementation and NS with up to 10 receivers per site.
"""

from __future__ import annotations

from ..analysis import plateau_rate
from ..core.sender_cc import CcConfig
from ..pgm import add_receiver, create_session
from ..simulator import LinkSpec, two_bottleneck
from .common import ExperimentResult, kbps

L1 = LinkSpec(rate_bps=400_000, delay=0.050, queue_bytes=20_000)
L2 = LinkSpec(rate_bps=500_000, delay=0.050, queue_slots=30)


def run(
    scale: float = 1.0,
    seed: int = 5,
    c: float = 0.75,
    rtt_mode: str = "seq",
    receivers_per_site: int = 1,
) -> ExperimentResult:
    duration = 300.0 * scale
    pr1_join = 60.0 * scale
    tcp_start = 120.0 * scale
    tcp_stop = 220.0 * scale

    net = two_bottleneck(L1, L2, seed=seed)
    # Optional extra receivers per site (the NS variant of the figure).
    extra = []
    for i in range(1, receivers_per_site):
        for site, router in (("pr1", "R1"), ("pr2", "R2")):
            name = f"{site}_{i}"
            net.add_host(name)
            net.duplex_link(router, name, LinkSpec(100_000_000, 0.0005, queue_slots=1000))
            extra.append((name, site))
    net.build_routes()

    session = create_session(
        net, "src", ["pr2"], cc=CcConfig(c=c, rtt_mode=rtt_mode),
        echo_timestamps=(rtt_mode == "time"), trace_name="pgm",
    )
    echo = rtt_mode == "time"
    add_receiver(net, session, "pr1", at=pr1_join, echo_timestamps=echo)
    for name, site in extra:
        at = pr1_join if site == "pr1" else 1.0
        add_receiver(net, session, name, at=at, echo_timestamps=echo)
    tcp = create_tcp_flow_on_l2(net, tcp_start, tcp_stop)
    net.run(until=duration)

    # Plateau rates in each phase (skipping transition edges).
    p1 = plateau_rate(session.trace, pr1_join * 0.3, pr1_join)
    p2 = plateau_rate(session.trace, pr1_join + (tcp_start - pr1_join) * 0.3, tcp_start)
    p3 = plateau_rate(session.trace, tcp_start + (tcp_stop - tcp_start) * 0.3, tcp_stop)
    p4 = plateau_rate(session.trace, min(tcp_stop + 30.0 * scale, duration - 1), duration)
    tcp_rate = plateau_rate(tcp.trace, tcp_start + (tcp_stop - tcp_start) * 0.3, tcp_stop)

    switches = session.sender.controller.election.switches
    ackers_by_phase = {
        "phase1": _acker_at(switches, tcp_start * 0.5),
        "phase2": _acker_at(switches, (pr1_join + tcp_start) / 2),
        "phase3": _acker_at(switches, (tcp_start + tcp_stop) / 2),
        "phase4": _acker_at(switches, (tcp_stop + duration) / 2),
    }

    result = ExperimentResult(
        name="fig5-acker-selection",
        params={
            "scale": scale, "seed": seed, "c": c, "rtt_mode": rtt_mode,
            "receivers_per_site": receivers_per_site,
        },
        expectation=(
            "rate plateaus ≈500 (PR2 alone) → ≈400 (PR1 joins, becomes "
            "acker) → ≈220 kbit/s (TCP competes on L2 and PR2's fair "
            "share drops below L1's rate, acker returns to PR2) → "
            "recovery toward 400 after TCP ends (acker back to PR1); "
            "an acker switch marks every transition"
        ),
    )
    result.add_row(phase="PR2 alone", plateau_kbps=kbps(p1), acker=ackers_by_phase["phase1"])
    result.add_row(phase="PR1 joined", plateau_kbps=kbps(p2), acker=ackers_by_phase["phase2"])
    result.add_row(phase="TCP active", plateau_kbps=kbps(p3), acker=ackers_by_phase["phase3"])
    result.add_row(phase="TCP ended", plateau_kbps=kbps(p4), acker=ackers_by_phase["phase4"])
    result.metrics.update(
        plateau1=p1, plateau2=p2, plateau3=p3, plateau4=p4,
        tcp_rate=tcp_rate,
        switch_count=len(switches),
        switch_times=[round(s.time, 2) for s in switches],
        ackers=ackers_by_phase,
        pr1_join=pr1_join, tcp_start=tcp_start, tcp_stop=tcp_stop,
    )
    result.attach_telemetry(session, seed=seed)
    session.close()
    tcp.close()
    return result


def create_tcp_flow_on_l2(net, start_at: float, stop_at: float):
    from ..tcp import create_tcp_flow

    return create_tcp_flow(net, "ts", "tr", start_at=start_at, stop_at=stop_at,
                           trace_name="tcp")


def _acker_at(switches, time: float):
    """Acker in charge at ``time`` given the switch history."""
    current = None
    for s in switches:
        if s.time > time:
            break
        current = s.new
    return current


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
