"""EXP-SCALE — §4: "large scale experiments involving up to 200
receivers ... mainly to test the scalability of the protocol".

pgmcc's scalability claims (§3) are about *constant* source-side state
and feedback load:

* exactly one receiver ACKs, so the ACK stream at the source is one
  per data packet regardless of the group size;
* NAKs are deduplicated — by NE suppression where routers help, and by
  the sender's repair holdoff otherwise — so correlated losses behind a
  shared bottleneck do not implode at the source;
* throughput is set by the acker's path, not by the group size.

This experiment grows a co-located group behind one congested
bottleneck from 25 to 200 receivers and measures the source's feedback
load and throughput, with and without network elements.
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..pgm import create_session, enable_network_elements
from ..simulator import NON_LOSSY, dumbbell
from .common import ExperimentResult, kbps


def run_point(n_receivers: int, with_ne: bool, duration: float, seed: int,
              result: ExperimentResult | None = None) -> dict:
    net = dumbbell(1, n_receivers, NON_LOSSY, seed=seed)
    session = create_session(
        net, "h0", [f"r{i}" for i in range(n_receivers)], trace_name="pgm"
    )
    if with_ne:
        enable_network_elements(net, telemetry=session.metrics)
    net.run(until=duration)
    sender = session.sender
    loss_events = max(session.trace.count("cc-loss"), 1)
    out = {
        "odata": sender.odata_sent,
        "acks": sender.acks_received,
        "naks": sender.naks_received,
        "naks_per_loss": sender.naks_received / loss_events,
        "acks_per_data": sender.acks_received / max(sender.odata_sent, 1),
        "rate": throughput_bps(session.trace, duration / 3, duration),
        "switches": session.acker_switches,
    }
    if result is not None:
        result.attach_telemetry(session, seed=seed, receivers=n_receivers,
                                with_ne=with_ne)
    session.close()
    return out


def run(
    scale: float = 1.0,
    seed: int = 101,
    group_sizes: tuple[int, ...] = (25, 50, 100, 200),
) -> ExperimentResult:
    duration = 60.0 * scale
    result = ExperimentResult(
        name="scalability",
        params={"scale": scale, "seed": seed, "group_sizes": group_sizes},
        expectation=(
            "source-side load is group-size independent: ~1 ACK per "
            "data packet (single acker) at every N; NE suppression "
            "keeps NAKs-per-loss-event roughly constant while without "
            "NEs it grows with the co-located group; throughput is "
            "unchanged across two orders of magnitude of receivers"
        ),
    )
    largest = max(group_sizes)
    for n in group_sizes:
        for with_ne in (False, True):
            # Ship one session-metrics document: the largest NE run
            # (the configuration the scalability claim is about).
            attach_to = result if (n == largest and with_ne) else None
            point = run_point(n, with_ne, duration, seed, result=attach_to)
            result.add_row(
                receivers=n,
                network_elements=with_ne,
                rate_kbps=kbps(point["rate"]),
                acks_per_data=round(point["acks_per_data"], 2),
                naks_at_source=point["naks"],
                naks_per_loss=round(point["naks_per_loss"], 1),
            )
            label = f"n{n}:{'ne' if with_ne else 'plain'}"
            for key, value in point.items():
                result.metrics[f"{label}:{key}"] = value
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.5, group_sizes=(25, 50, 100)).report())


if __name__ == "__main__":  # pragma: no cover
    main()
