"""EXP-SCALE — §4's scalability study, pushed from 200 to 10^6 receivers.

pgmcc's scalability claims (§3) are about *constant* source-side state
and feedback load:

* exactly one receiver ACKs, so the ACK stream at the source is one
  per data packet regardless of the group size;
* NAKs are deduplicated — by NE suppression where routers help, and by
  the sender's repair holdoff otherwise — so correlated losses behind a
  shared bottleneck do not implode at the source;
* throughput is set by the acker's path, not by the group size.

The experiment has three parts:

1. the paper's own ladder (25–200 full receiver engines behind one
   bottleneck, with and without NEs) — unchanged from the original
   reproduction, exact per-receiver fidelity;
2. an **equivalence cell** (:func:`exact_vs_hybrid`): the same small
   group run once with full engines and once through
   :mod:`repro.pgm.aggregate`'s hybrid mode, asserting the two agree
   on acker identity, window-trajectory digest and goodput — the
   fidelity gate for part 3;
3. a **hybrid ladder** (:func:`run_hybrid_cell`): 10^3 → 10^6
   receivers behind K shared bottlenecks with the aggregate-tail
   subsystem, measuring construction/run wall time, peak RSS,
   receivers-per-second and bytes-per-receiver.  Cells are independent
   and can be sharded across the runner's worker pool (``jobs=``).
"""

from __future__ import annotations

import hashlib
import time

from ..analysis import throughput_bps
from ..pgm import SessionConfig, create_session, enable_network_elements
from ..simulator import (
    NON_LOSSY,
    DeterministicLoss,
    LinkSpec,
    PeriodicLoss,
    dumbbell,
    dumbbell_subtrees,
)
from .common import ExperimentResult, kbps

#: documented goodput tolerance of the equivalence oracle (relative).
GOODPUT_TOLERANCE = 0.05

#: bottleneck used by the hybrid cells: moderate capacity, short
#: delay, clean (losses are injected deterministically per subtree so
#: cells are reproducible and the single rate doesn't collapse to the
#: min of K independently-lossy paths).
HYBRID_BOTTLENECK = LinkSpec(rate_bps=2_000_000, delay=0.02)

#: default hybrid ladder (receivers per cell).
HYBRID_SIZES = (1_000, 10_000, 100_000, 1_000_000)


# ---------------------------------------------------------------------------
# Part 1 — the paper's exact ladder (unchanged behaviour and metric keys)
# ---------------------------------------------------------------------------


def run_point(n_receivers: int, with_ne: bool, duration: float, seed: int,
              result: ExperimentResult | None = None) -> dict:
    net = dumbbell(1, n_receivers, NON_LOSSY, seed=seed)
    session = create_session(
        net, "h0", [f"r{i}" for i in range(n_receivers)], trace_name="pgm"
    )
    if with_ne:
        enable_network_elements(net, telemetry=session.metrics)
    net.run(until=duration)
    sender = session.sender
    loss_events = max(session.trace.count("cc-loss"), 1)
    out = {
        "odata": sender.odata_sent,
        "acks": sender.acks_received,
        "naks": sender.naks_received,
        "naks_per_loss": sender.naks_received / loss_events,
        "acks_per_data": sender.acks_received / max(sender.odata_sent, 1),
        "rate": throughput_bps(session.trace, duration / 3, duration),
        "switches": session.acker_switches,
    }
    if result is not None:
        result.attach_telemetry(session, seed=seed, receivers=n_receivers,
                                with_ne=with_ne)
    session.close()
    return out


# ---------------------------------------------------------------------------
# Part 2 — the equivalence oracle (fidelity gate for hybrid mode)
# ---------------------------------------------------------------------------


def _run_mode(mode: str, n: int, subtrees: int, duration: float, seed: int,
              drops: tuple[int, ...], scheduler: str | None,
              packet_pool: bool | None) -> dict:
    net = dumbbell_subtrees(
        n, subtrees=subtrees, bottleneck=HYBRID_BOTTLENECK, seed=seed,
        members="real" if mode == "exact" else "virtual",
    )
    if drops:
        net.link("R0", net.subtree_plan.router(0)).loss = (
            DeterministicLoss(drops))
    cfg = SessionConfig(
        stop_at=duration,
        aggregate=(mode == "hybrid"),
        scheduler=scheduler,
        packet_pool=packet_pool,
    )
    plan = net.subtree_plan
    hosts = ([plan.identity(k, i) for k in range(subtrees)
              for i in range(plan.sizes[k])] if mode == "exact" else [])
    session = create_session(net, "h0", hosts, config=cfg)
    enable_network_elements(net)
    # Window-trajectory sampling: W at a fixed sim-time grid.  The
    # digest is over rounded samples, so it pins the *trajectory* while
    # staying robust to float formatting.
    samples: list[float] = []

    def sample() -> None:
        samples.append(round(session.sender.controller.window.w, 3))
        if net.sim.now < duration:
            net.sim.schedule(0.25, sample)

    net.sim.schedule(0.25, sample)
    net.sim.run(until=duration + 1.0)
    summary = session.summary()
    out = {
        "acker": summary["acker"],
        "switches": summary["acker_switches"],
        "odata": summary["odata_sent"],
        "acks": summary["acks_received"],
        "goodput": session.throughput_bps(duration / 3, duration),
        "window_digest": hashlib.sha256(
            repr(samples).encode()).hexdigest()[:16],
    }
    session.close()
    return out


def exact_vs_hybrid(
    n: int = 36,
    subtrees: int = 3,
    duration: float = 8.0,
    seed: int = 7,
    drops: tuple[int, ...] = (100, 600, 1100),
    scheduler: str | None = None,
    packet_pool: bool | None = None,
) -> dict:
    """Run the same group exact and hybrid; compare what the oracle pins.

    Behind identical shared bottlenecks the aggregate tail is
    packet-for-packet equivalent to a full population as long as
    repairs complete without straggler re-NAK chains — which the
    deterministic sparse-loss pattern used here guarantees.  The
    comparison keys:

    * ``acker_match`` — the elections pick the same receiver identity;
    * ``digest_match`` — the window trajectories (W sampled every
      0.25 s, rounded to 1e-3) are digest-equal;
    * ``goodput_rel_err`` — relative goodput difference; the oracle's
      documented tolerance is :data:`GOODPUT_TOLERANCE` (sustained
      *random* loss shifts NAK retry timing between the two modes, so
      goodput is a tolerance comparison, not an equality).
    """
    exact = _run_mode("exact", n, subtrees, duration, seed, drops,
                      scheduler, packet_pool)
    hybrid = _run_mode("hybrid", n, subtrees, duration, seed, drops,
                       scheduler, packet_pool)
    goodput_rel = (abs(exact["goodput"] - hybrid["goodput"])
                   / max(exact["goodput"], 1.0))
    return {
        "exact": exact,
        "hybrid": hybrid,
        "acker_match": exact["acker"] == hybrid["acker"],
        "digest_match": exact["window_digest"] == hybrid["window_digest"],
        "goodput_rel_err": goodput_rel,
        "goodput_within_tolerance": goodput_rel <= GOODPUT_TOLERANCE,
    }


# ---------------------------------------------------------------------------
# Part 3 — the hybrid ladder (one cell = one orchestrator task)
# ---------------------------------------------------------------------------


def subtrees_for(n: int) -> int:
    """Default subtree count for an ``n``-receiver hybrid cell."""
    return min(64, max(4, n // 2_000))


def run_hybrid_cell(
    n: int = 100_000,
    scale: float = 1.0,
    seed: int = 101,
    subtrees: int | None = None,
    check_invariants: bool = True,
) -> ExperimentResult:
    """One hybrid-fidelity scale cell: ``n`` receivers, K subtrees.

    Losses are deterministic (periodic, on two subtrees) so cells are
    reproducible and comparable across ``n``.  Returns per-cell metrics
    prefixed ``hyb{n}:`` — including the memory/throughput series the
    bench harness lifts into ``results/BENCH_RESULTS.json``
    (``receivers_per_sec``, ``bytes_per_receiver``, ``peak_rss_mb``).
    """
    from ..runner.bench import memory_probe

    k = subtrees if subtrees is not None else subtrees_for(n)
    duration = max(6.0, 20.0 * scale)
    before = memory_probe()
    t0 = time.perf_counter()
    net = dumbbell_subtrees(n, subtrees=k, bottleneck=HYBRID_BOTTLENECK,
                            seed=seed)
    build_s = time.perf_counter() - t0
    net.link("R0", net.subtree_plan.router(0)).loss = PeriodicLoss(
        period=50, offset=17)
    if k > 1:
        net.link("R0", net.subtree_plan.router(1)).loss = PeriodicLoss(
            period=80, offset=31)
    cfg = SessionConfig(stop_at=duration, aggregate=True,
                        check_invariants=check_invariants,
                        strict_invariants=False)
    session = create_session(net, "h0", [], config=cfg)
    enable_network_elements(net, telemetry=session.metrics)
    net.sim.run(until=duration + 1.0)
    wall_s = time.perf_counter() - t0
    after = memory_probe()
    summary = session.summary()
    agg = summary["aggregate"]
    violations = (len(session.invariants.violations)
                  if session.invariants is not None else 0)
    rss_delta = max(after["rss_bytes"] - before["rss_bytes"], 0)

    result = ExperimentResult(
        name=f"scalability-hybrid-{n}",
        params={"n": n, "subtrees": k, "scale": scale, "seed": seed,
                "duration": duration},
        expectation=(
            "hybrid fidelity keeps memory bounded per subtree and "
            "construction+run wall time seconds even at 10^6 "
            "receivers, with zero invariant violations"
        ),
    )
    label = f"hyb{n}"
    point = {
        "population": agg["population"],
        "subtrees": agg["subtrees"],
        "exact_cohort": agg["exact_cohort"],
        "tail": agg["tail"],
        "promotions": agg["promotions"],
        "demotions": agg["demotions"],
        "synthetic_naks": agg["synthetic_naks"],
        "odata": summary["odata_sent"],
        "acks": summary["acks_received"],
        "acks_per_data": (summary["acks_received"]
                          / max(summary["odata_sent"], 1)),
        "rate": session.throughput_bps(duration / 3, duration),
        "invariant_violations": violations,
    }
    for key, value in point.items():
        result.metrics[f"{label}:{key}"] = value
    # Measured values go through the digest-excluded perf channel:
    # wall clock and RSS differ run-to-run, and EXP-SCALE's content
    # digest must stay scheduler/pool-invariant.
    measured = {
        "build_s": round(build_s, 4),
        "wall_s": round(wall_s, 4),
        "receivers_per_sec": round(n / max(wall_s, 1e-9), 1),
        "peak_rss_mb": round(after["peak_rss_bytes"] / 1e6, 2),
        "bytes_per_receiver": round(rss_delta / max(n, 1), 2),
    }
    for key, value in measured.items():
        result.perf[f"{label}:{key}"] = value
    result.add_row(
        receivers=n,
        subtrees=k,
        exact_cohort=agg["exact_cohort"],
        promotions=agg["promotions"],
        rate_kbps=kbps(point["rate"]),
        violations=violations,
    )
    session.close()
    return result


def _merge_cell(result: ExperimentResult, cell: ExperimentResult) -> None:
    result.metrics.update(cell.metrics)
    result.perf.update(cell.perf)
    for row in cell.rows:
        result.rows.append(row)


def run_hybrid_ladder(
    result: ExperimentResult,
    sizes: tuple[int, ...],
    scale: float,
    seed: int,
    jobs: int | None = None,
) -> None:
    """Run the hybrid cells, optionally sharded over worker processes.

    ``jobs`` > 1 dispatches each cell as an orchestrator task (the
    runner's worker pool); cells are independent, so this is a pure
    fan-out.  ``jobs=None``/1 runs them inline — as does a call from
    inside a runner worker (daemonic processes cannot fork a nested
    pool, and the outer runner already owns the machine's cores).
    """
    if jobs is not None and jobs > 1:
        import multiprocessing

        if multiprocessing.current_process().daemon:
            jobs = 1
    if jobs is not None and jobs > 1 and len(sizes) > 1:
        from ..runner.orchestrator import Orchestrator
        from ..runner.specs import ExperimentSpec

        specs = [
            ExperimentSpec(
                f"hybrid-{n}",
                "repro.experiments.scalability",
                func="run_hybrid_cell",
                scale_factor=1.0,
                kwargs=(("n", n), ("seed", seed)),
                description=f"hybrid cell, {n} receivers",
            )
            for n in sizes
        ]
        orch = Orchestrator(specs, scale=scale, jobs=jobs)
        orch.run()
        for outcome in orch.outcomes:
            if outcome.status == "ok" and outcome.result is not None:
                _merge_cell(result, outcome.result)
            else:
                result.metrics[f"{outcome.id}:status"] = outcome.status
    else:
        for n in sizes:
            _merge_cell(result, run_hybrid_cell(n, scale=scale, seed=seed))


# ---------------------------------------------------------------------------
# The experiment entry point
# ---------------------------------------------------------------------------


def run(
    scale: float = 1.0,
    seed: int = 101,
    group_sizes: tuple[int, ...] = (25, 50, 100, 200),
    hybrid_sizes: tuple[int, ...] | None = None,
    jobs: int | None = None,
) -> ExperimentResult:
    duration = 60.0 * scale
    result = ExperimentResult(
        name="scalability",
        params={"scale": scale, "seed": seed, "group_sizes": group_sizes},
        expectation=(
            "source-side load is group-size independent: ~1 ACK per "
            "data packet (single acker) at every N; NE suppression "
            "keeps NAKs-per-loss-event roughly constant while without "
            "NEs it grows with the co-located group; throughput is "
            "unchanged across two orders of magnitude of receivers; "
            "hybrid-fidelity cells extend the sweep to 10^6 receivers "
            "with bounded memory, gated by an exact-vs-hybrid "
            "equivalence oracle"
        ),
    )
    largest = max(group_sizes)
    for n in group_sizes:
        for with_ne in (False, True):
            # Ship one session-metrics document: the largest NE run
            # (the configuration the scalability claim is about).
            attach_to = result if (n == largest and with_ne) else None
            point = run_point(n, with_ne, duration, seed, result=attach_to)
            result.add_row(
                receivers=n,
                network_elements=with_ne,
                rate_kbps=kbps(point["rate"]),
                acks_per_data=round(point["acks_per_data"], 2),
                naks_at_source=point["naks"],
                naks_per_loss=round(point["naks_per_loss"], 1),
            )
            label = f"n{n}:{'ne' if with_ne else 'plain'}"
            for key, value in point.items():
                result.metrics[f"{label}:{key}"] = value

    # Fidelity gate before the hybrid ladder is trusted.
    equiv = exact_vs_hybrid(seed=seed % 1000 or 7)
    result.metrics["equiv:acker_match"] = equiv["acker_match"]
    result.metrics["equiv:digest_match"] = equiv["digest_match"]
    result.metrics["equiv:goodput_rel_err"] = round(
        equiv["goodput_rel_err"], 6)
    result.metrics["equiv:ok"] = (
        equiv["acker_match"] and equiv["digest_match"]
        and equiv["goodput_within_tolerance"]
    )

    if hybrid_sizes is None:
        # Scale-adapted default: quick lanes skip the top of the
        # ladder (a 10^6 cell is seconds, but quick lanes are for
        # smoke, not scale measurement).
        hybrid_sizes = HYBRID_SIZES if scale >= 0.4 else HYBRID_SIZES[:2]
    run_hybrid_ladder(result, hybrid_sizes, scale, seed, jobs=jobs)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from ..runner.orchestrator import auto_jobs

    print(run(scale=0.5, group_sizes=(25, 50, 100),
              jobs=auto_jobs()).report())


if __name__ == "__main__":  # pragma: no cover
    main()
