"""EXP-F3 — Fig. 3: intra-protocol fairness.

Two pgmcc sessions share one bottleneck.  The first session (started
first) has two receivers, the second has one.  Two bottleneck
configurations, the paper's §4 standards:

* non-lossy: 500 kbit/s, 50 ms, 30 slots — the first session must
  halve its rate when the second starts, then both share evenly;
* lossy: 2 Mbit/s, 230 ms, 30 KB, 3 % random loss — rates are
  loss-determined, so the second session's arrival must not
  appreciably change the first's throughput.

Fig. 3 was run with c = 1 (the paper wanted to show that switches do
not harm the protocol), so that is the default here.
"""

from __future__ import annotations

from ..analysis import jain_index, throughput_bps
from ..core.sender_cc import CcConfig
from ..pgm import create_session
from ..simulator import LOSSY, NON_LOSSY, LinkSpec, dumbbell
from .common import ExperimentResult, kbps


def run_case(
    spec: LinkSpec,
    label: str,
    duration: float = 180.0,
    second_start: float = 60.0,
    c: float = 1.0,
    seed: int = 7,
) -> dict:
    """One Fig. 3 panel; returns phase rates and fairness metrics."""
    net = dumbbell(2, 3, spec, seed=seed)
    s1 = create_session(net, "h0", ["r0", "r1"], cc=CcConfig(c=c), trace_name="pgm1")
    s2 = create_session(
        net, "h1", ["r2"], cc=CcConfig(c=c), start_at=second_start, trace_name="pgm2"
    )
    net.run(until=duration)

    warmup = min(10.0, second_start / 4)
    phase_a = (warmup, second_start)  # only session 1
    settle = min(15.0, (duration - second_start) / 4)
    phase_b = (second_start + settle, duration)  # both competing
    rate1_a = throughput_bps(s1.trace, *phase_a)
    rate1_b = throughput_bps(s1.trace, *phase_b)
    rate2_b = throughput_bps(s2.trace, *phase_b)
    out = {
        "label": label,
        "rate1_alone": rate1_a,
        "rate1_shared": rate1_b,
        "rate2_shared": rate2_b,
        "jain": jain_index([rate1_b, rate2_b]),
        "switches1": s1.acker_switches,
        "switches2": s2.acker_switches,
        "rdata1": s1.sender.rdata_sent,
        "odata1": s1.sender.odata_sent,
    }
    s1.close()
    s2.close()
    return out


def run(scale: float = 1.0, seed: int = 7, c: float = 1.0) -> ExperimentResult:
    duration = 180.0 * scale
    second_start = 60.0 * scale
    result = ExperimentResult(
        name="fig3-intra-fairness",
        params={"scale": scale, "seed": seed, "c": c},
        expectation=(
            "non-lossy: session 1 yields ~half its rate when session 2 "
            "starts, even split thereafter (Jain≈1); lossy: session 2's "
            "start leaves session 1's loss-determined rate unchanged"
        ),
    )
    for spec, label in ((NON_LOSSY, "non-lossy"), (LOSSY, "lossy")):
        case = run_case(spec, label, duration, second_start, c, seed)
        result.add_row(
            case=label,
            rate1_alone_kbps=kbps(case["rate1_alone"]),
            rate1_shared_kbps=kbps(case["rate1_shared"]),
            rate2_shared_kbps=kbps(case["rate2_shared"]),
            jain=round(case["jain"], 3),
            acker_switches=case["switches1"],
        )
        for key, value in case.items():
            if key != "label":
                result.metrics[f"{label}:{key}"] = value
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
