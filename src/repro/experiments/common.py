"""Shared experiment plumbing.

Every experiment runner returns an :class:`ExperimentResult`: named
rows of measurements plus the paper's expectation, so benches, tests
and EXPERIMENTS.md all read from one structure.  ``scale`` shrinks the
simulated duration for quick runs (tests/benches); ``scale=1.0`` is
the paper-faithful duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: free-form derived metrics used by assertions
    metrics: dict[str, Any] = field(default_factory=dict)
    expectation: str = ""

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def format_table(self) -> str:
        """Plain-text table of the rows (the figure's 'data')."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        widths = {c: len(c) for c in columns}
        rendered = []
        for row in self.rows:
            cells = {c: _fmt(row.get(c, "")) for c in columns}
            for c in columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        lines = [header, "  ".join("-" * widths[c] for c in columns)]
        for cells in rendered:
            lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
        return "\n".join(lines)

    def report(self) -> str:
        lines = [f"== {self.name} =="]
        if self.params:
            lines.append("params: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.params.items()))
        lines.append(self.format_table())
        if self.metrics:
            lines.append("metrics: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.metrics.items()))
        if self.expectation:
            lines.append(f"paper: {self.expectation}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def kbps(bps: float) -> float:
    """bits/s -> kbit/s, rounded for table display."""
    return round(bps / 1000.0, 1)
