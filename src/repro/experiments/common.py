"""Shared experiment plumbing.

Every experiment runner returns an :class:`ExperimentResult`: named
rows of measurements plus the paper's expectation, so benches, tests
and EXPERIMENTS.md all read from one structure.  ``scale`` shrinks the
simulated duration for quick runs (tests/benches); ``scale=1.0`` is
the paper-faithful duration.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for digests and cache keys.

    Tuples become lists (the JSON round-trip does the same), dict keys
    are sorted, and anything non-JSON falls back to ``repr``.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: free-form derived metrics used by assertions
    metrics: dict[str, Any] = field(default_factory=dict)
    expectation: str = ""
    #: ``pgmcc.session-metrics/v1`` export from the experiment's
    #: (representative) session, when the experiment attaches one
    telemetry: dict[str, Any] | None = None
    #: measured perf values (wall clock, RSS, throughput) — shipped in
    #: manifests/caches but **excluded from the digest**, since wall
    #: time is not content
    perf: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def attach_telemetry(self, session: Any, **meta: Any) -> None:
        """Attach ``session.metrics.export()`` (no-op for sessions
        whose telemetry is disabled — a null export carries no data
        worth shipping through manifests)."""
        registry = getattr(session, "metrics", None)
        if registry is not None and getattr(registry, "enabled", False):
            self.telemetry = registry.export(experiment=self.name, **meta)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (tuples normalise to lists) used by the
        runner's cache and run manifests."""
        doc: dict[str, Any] = {
            "name": self.name,
            "params": self.params,
            "rows": self.rows,
            "metrics": self.metrics,
            "expectation": self.expectation,
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        if self.perf:
            doc["perf"] = self.perf
        return json.loads(canonical_json(doc))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            rows=list(data.get("rows", [])),
            metrics=dict(data.get("metrics", {})),
            expectation=data.get("expectation", ""),
            telemetry=data.get("telemetry"),
            perf=dict(data.get("perf", {})),
        )

    def digest(self) -> str:
        """Content digest of the result (timing-free, order-stable).

        ``perf`` is excluded: it carries measured wall-clock/RSS values
        that legitimately differ between otherwise identical runs.
        """
        doc = self.to_dict()
        doc.pop("perf", None)
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

    def format_table(self) -> str:
        """Plain-text table of the rows (the figure's 'data')."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        widths = {c: len(c) for c in columns}
        rendered = []
        for row in self.rows:
            cells = {c: _fmt(row.get(c, "")) for c in columns}
            for c in columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        lines = [header, "  ".join("-" * widths[c] for c in columns)]
        for cells in rendered:
            lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
        return "\n".join(lines)

    def report(self) -> str:
        lines = [f"== {self.name} =="]
        if self.params:
            lines.append("params: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.params.items()))
        lines.append(self.format_table())
        if self.metrics:
            lines.append("metrics: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.metrics.items()))
        if self.expectation:
            lines.append(f"paper: {self.expectation}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def kbps(bps: float) -> float:
    """bits/s -> kbit/s, rounded for table display."""
    return round(bps / 1000.0, 1)


#: ``ParamSpec.type`` name -> accepted Python types.  ``bool`` is not
#: an ``int`` here (the common footgun), and sequences accept both the
#: tuple a spec carries and the list a JSON round-trip produces.
PARAM_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "seq": (tuple, list),
}


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter: name, type, default, bounds.

    The typed half of an :class:`ExperimentSpec`: the runner and the
    sweep DSL validate keyword arguments against these *before* a
    worker starts, so a typo'd axis or an out-of-range value raises a
    clear ``TypeError``/``ValueError`` up front instead of a traceback
    from inside a worker process.  Frozen and tuple-valued so the
    enclosing spec stays hashable.
    """

    name: str
    type: str = "float"  #: one of :data:`PARAM_TYPES`
    default: Any = None
    #: closed set of allowed values (checked after the type)
    choices: tuple[Any, ...] = ()
    #: inclusive numeric bounds (ignored for non-numeric types)
    low: Any = None
    high: Any = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.type not in PARAM_TYPES:
            raise ValueError(
                f"parameter {self.name!r}: unknown type {self.type!r} "
                f"(one of {', '.join(PARAM_TYPES)})")

    def check(self, value: Any, *, where: str = "") -> None:
        """Raise ``TypeError``/``ValueError`` unless ``value`` fits."""
        label = f"{where}{self.name}"
        accepted = PARAM_TYPES[self.type]
        if isinstance(value, bool) and self.type in ("int", "float"):
            raise TypeError(f"{label}: expected {self.type}, got bool")
        if not isinstance(value, accepted):
            raise TypeError(
                f"{label}: expected {self.type}, "
                f"got {type(value).__name__} ({value!r})")
        if self.choices and value not in self.choices:
            raise ValueError(
                f"{label}: {value!r} is not one of "
                f"{', '.join(map(repr, self.choices))}")
        if self.low is not None and value < self.low:
            raise ValueError(f"{label}: {value!r} is below the minimum "
                             f"{self.low!r}")
        if self.high is not None and value > self.high:
            raise ValueError(f"{label}: {value!r} is above the maximum "
                             f"{self.high!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe schema row (``pgmcc.param-schema/v1`` entry)."""
        doc: dict[str, Any] = {"name": self.name, "type": self.type}
        if self.default is not None:
            doc["default"] = self.default
        if self.choices:
            doc["choices"] = list(self.choices)
        if self.low is not None:
            doc["low"] = self.low
        if self.high is not None:
            doc["high"] = self.high
        if self.help:
            doc["help"] = self.help
        return doc


#: every experiment accepts ``scale`` — declared once, merged into each
#: spec's schema so sweeps can treat it like any other parameter
SCALE_PARAM = ParamSpec("scale", "float", default=1.0, low=0.0,
                        help="fraction of the paper-faithful duration")


@dataclass(frozen=True)
class ExperimentSpec:
    """Spawn-safe descriptor of one experiment in the registry.

    Unlike a lambda, a spec is picklable and hashable: a worker process
    reconstructs the callable from ``module``/``func`` by import.  The
    effective simulated duration of a run is ``scale * scale_factor``
    (some experiments run at half duration in the full report).

    ``params`` is the experiment's declared parameter schema
    (:class:`ParamSpec` rows).  An empty schema means *undeclared* —
    anything goes, for back compatibility; a non-empty schema is
    enforced by :meth:`validate_kwargs` before any worker starts, and
    is part of the result-cache fingerprint (a schema change
    invalidates stale cached results).
    """

    id: str
    module: str
    func: str = "run"
    #: multiplier applied to the sweep-wide scale for this experiment
    scale_factor: float = 1.0
    #: extra keyword arguments, as a tuple of (name, value) pairs so the
    #: spec stays hashable; values must be picklable
    kwargs: tuple[tuple[str, Any], ...] = ()
    description: str = ""
    #: declared parameter schema (empty = undeclared, permissive)
    params: tuple[ParamSpec, ...] = ()
    #: hidden specs are resolvable by id (sweep cells) but excluded
    #: from the default full-registry report/sweep and the REGISTRY view
    hidden: bool = False

    def resolve(self) -> Callable[..., ExperimentResult]:
        mod = importlib.import_module(self.module)
        return getattr(mod, self.func)

    def call_kwargs(self, scale: float) -> dict[str, Any]:
        return {"scale": scale * self.scale_factor, **dict(self.kwargs)}

    # -- parameter schema --------------------------------------------

    def param(self, name: str) -> ParamSpec | None:
        if name == "scale":
            return SCALE_PARAM
        for spec in self.params:
            if spec.name == name:
                return spec
        return None

    def validate_kwargs(self, kwargs: dict[str, Any]) -> None:
        """Check ``kwargs`` against the declared schema.

        Raises ``TypeError`` for unknown names or type mismatches and
        ``ValueError`` for out-of-range/out-of-choices values.  A spec
        with no declared schema accepts anything (``scale`` is still
        type-checked — every experiment takes it).
        """
        declared = {p.name for p in self.params}
        for name, value in kwargs.items():
            spec = self.param(name)
            if spec is None:
                if not declared:
                    continue  # undeclared schema: permissive
                known = ", ".join(sorted(declared | {"scale"}))
                raise TypeError(
                    f"{self.id}: unknown parameter {name!r} "
                    f"(declared: {known})")
            spec.check(value, where=f"{self.id}: ")

    def schema_doc(self) -> list[dict[str, Any]]:
        """The declared schema as JSON-safe rows (``scale`` included),
        used by ``--list``, the sweep DSL and the cache fingerprint."""
        return [SCALE_PARAM.to_dict()] + [p.to_dict() for p in self.params]

    def schema_digest(self) -> str:
        return hashlib.sha256(
            canonical_json(self.schema_doc()).encode()).hexdigest()

    def run(self, scale: float = 1.0) -> ExperimentResult:
        return self.resolve()(**self.call_kwargs(scale))
