"""Shared experiment plumbing.

Every experiment runner returns an :class:`ExperimentResult`: named
rows of measurements plus the paper's expectation, so benches, tests
and EXPERIMENTS.md all read from one structure.  ``scale`` shrinks the
simulated duration for quick runs (tests/benches); ``scale=1.0`` is
the paper-faithful duration.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for digests and cache keys.

    Tuples become lists (the JSON round-trip does the same), dict keys
    are sorted, and anything non-JSON falls back to ``repr``.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: free-form derived metrics used by assertions
    metrics: dict[str, Any] = field(default_factory=dict)
    expectation: str = ""
    #: ``pgmcc.session-metrics/v1`` export from the experiment's
    #: (representative) session, when the experiment attaches one
    telemetry: dict[str, Any] | None = None
    #: measured perf values (wall clock, RSS, throughput) — shipped in
    #: manifests/caches but **excluded from the digest**, since wall
    #: time is not content
    perf: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def attach_telemetry(self, session: Any, **meta: Any) -> None:
        """Attach ``session.metrics.export()`` (no-op for sessions
        whose telemetry is disabled — a null export carries no data
        worth shipping through manifests)."""
        registry = getattr(session, "metrics", None)
        if registry is not None and getattr(registry, "enabled", False):
            self.telemetry = registry.export(experiment=self.name, **meta)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (tuples normalise to lists) used by the
        runner's cache and run manifests."""
        doc: dict[str, Any] = {
            "name": self.name,
            "params": self.params,
            "rows": self.rows,
            "metrics": self.metrics,
            "expectation": self.expectation,
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        if self.perf:
            doc["perf"] = self.perf
        return json.loads(canonical_json(doc))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            rows=list(data.get("rows", [])),
            metrics=dict(data.get("metrics", {})),
            expectation=data.get("expectation", ""),
            telemetry=data.get("telemetry"),
            perf=dict(data.get("perf", {})),
        )

    def digest(self) -> str:
        """Content digest of the result (timing-free, order-stable).

        ``perf`` is excluded: it carries measured wall-clock/RSS values
        that legitimately differ between otherwise identical runs.
        """
        doc = self.to_dict()
        doc.pop("perf", None)
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

    def format_table(self) -> str:
        """Plain-text table of the rows (the figure's 'data')."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        widths = {c: len(c) for c in columns}
        rendered = []
        for row in self.rows:
            cells = {c: _fmt(row.get(c, "")) for c in columns}
            for c in columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        lines = [header, "  ".join("-" * widths[c] for c in columns)]
        for cells in rendered:
            lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
        return "\n".join(lines)

    def report(self) -> str:
        lines = [f"== {self.name} =="]
        if self.params:
            lines.append("params: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.params.items()))
        lines.append(self.format_table())
        if self.metrics:
            lines.append("metrics: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.metrics.items()))
        if self.expectation:
            lines.append(f"paper: {self.expectation}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def kbps(bps: float) -> float:
    """bits/s -> kbit/s, rounded for table display."""
    return round(bps / 1000.0, 1)


@dataclass(frozen=True)
class ExperimentSpec:
    """Spawn-safe descriptor of one experiment in the registry.

    Unlike a lambda, a spec is picklable and hashable: a worker process
    reconstructs the callable from ``module``/``func`` by import.  The
    effective simulated duration of a run is ``scale * scale_factor``
    (some experiments run at half duration in the full report).
    """

    id: str
    module: str
    func: str = "run"
    #: multiplier applied to the sweep-wide scale for this experiment
    scale_factor: float = 1.0
    #: extra keyword arguments, as a tuple of (name, value) pairs so the
    #: spec stays hashable; values must be picklable
    kwargs: tuple[tuple[str, Any], ...] = ()
    description: str = ""

    def resolve(self) -> Callable[..., ExperimentResult]:
        mod = importlib.import_module(self.module)
        return getattr(mod, self.func)

    def call_kwargs(self, scale: float) -> dict[str, Any]:
        return {"scale": scale * self.scale_factor, **dict(self.kwargs)}

    def run(self, scale: float = 1.0) -> ExperimentResult:
        return self.resolve()(**self.call_kwargs(scale))
