"""Robustness experiments the paper describes but does not plot.

* EXP-MPATH (§4): "topologies presenting multiple paths between sender
  and receiver ... to verify the robustness of the scheme to
  out-of-order data or ACK delivery".  We spray the multicast data
  over two parallel unequal-delay paths (per-packet round robin — the
  worst case for reordering) and check the session neither stalls nor
  collapses; the ACK bitmap is what absorbs the reordering (§3.3).

* EXP-CHURN: sustained receiver churn, including departures of the
  current acker.  The election plus the stall machinery must keep the
  session alive; pgmcc treats each takeover as the acker *moving*.

* ABL-BURST: Gilbert-Elliott bursty loss vs Bernoulli loss at equal
  average rate.  The per-packet low-pass filter weighs every lost
  packet, so bursts inflate the loss estimate relative to TFRC's
  loss-event counting; the session survives both.

* EXP-CHAOS: a scripted :class:`~repro.simulator.faults.FaultPlan`
  (acker crash, bottleneck flap, burst loss, duplication, corruption,
  receiver pause) runs against a dumbbell session with the runtime
  :class:`~repro.pgm.invariants.InvariantChecker` attached as the
  oracle.  The session must survive every episode with zero invariant
  violations: crashes are absorbed by re-election (§3.5), a dead
  bottleneck drains the ACK clock until the stall machinery restarts
  from W = T = 1 (§3.2/§3.6), and duplicated or reordered traffic is
  absorbed by the ACK bitmap (§3.3).
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..pgm import add_receiver, create_session
from ..simulator import (
    ACKER,
    BurstLoss,
    Corruption,
    Duplication,
    FaultPlan,
    GilbertElliottLoss,
    LinkSpec,
    Network,
    NodeCrash,
    NodePause,
    dumbbell,
    flap_link,
)
from .common import ExperimentResult, kbps

ACCESS = LinkSpec(100_000_000, 0.0005, queue_slots=1000)


def build_multipath(seed: int, delay_skew: float) -> Network:
    """src -- E0 ={two parallel links}= E1 -- rx, ACKs return the same
    sprayed way."""
    net = Network(seed=seed)
    net.add_host("src")
    net.add_ecmp_router("E0")
    net.add_router("Pa")
    net.add_router("Pb")
    net.add_ecmp_router("E1")
    net.add_host("rx")
    net.duplex_link("src", "E0", ACCESS)
    net.duplex_link("E0", "Pa", LinkSpec(500_000, 0.030, queue_slots=30))
    net.duplex_link("E0", "Pb", LinkSpec(500_000, 0.030 + delay_skew, queue_slots=30))
    net.duplex_link("Pa", "E1", ACCESS)
    net.duplex_link("Pb", "E1", ACCESS)
    net.duplex_link("E1", "rx", ACCESS)
    net.build_routes()
    return net


def run_multipath(scale: float = 1.0, seed: int = 71,
                  delay_skew: float = 0.040) -> ExperimentResult:
    duration = 120.0 * scale
    result = ExperimentResult(
        name="multipath-reordering",
        params={"scale": scale, "seed": seed, "delay_skew": delay_skew},
        expectation=(
            "per-packet spraying over unequal-delay paths reorders both "
            "data and ACKs; the ACK bitmap absorbs it — the session "
            "must not stall or starve, at the cost of some spurious "
            "dupack reactions (as for TCP under reordering)"
        ),
    )
    # Reference: same capacity on a single path.
    single = Network(seed=seed)
    single.add_host("src")
    single.add_router("R")
    single.add_host("rx")
    single.duplex_link("src", "R", ACCESS)
    single.duplex_link("R", "rx", LinkSpec(1_000_000, 0.030, queue_slots=60))
    single.build_routes()
    ref = create_session(single, "src", ["rx"], trace_name="single")
    single.run(until=duration)
    ref_rate = throughput_bps(ref.trace, duration / 3, duration)
    ref.close()

    net = build_multipath(seed, delay_skew)
    mcast_group = "mc:pgm-mpath"
    session = create_session(net, "src", ["rx"], group=mcast_group,
                             trace_name="mpath")
    # Spray both the downstream group traffic and the upstream feedback.
    # The shortest-path tree only provisioned one of the parallel
    # routers, so graft the alternate one onto the group too.
    net.router("E0").set_ecmp(mcast_group, ["Pa", "Pb"])
    net.router("E1").set_ecmp("src", ["Pa", "Pb"])
    for parallel in ("Pa", "Pb"):
        net.router(parallel).multicast_routes[mcast_group] = ("E1",)
    net.run(until=duration)
    rate = throughput_bps(session.trace, duration / 3, duration)
    result.add_row(path="single 1 Mbit/s", rate_kbps=kbps(ref_rate), stalls=0,
                   cc_losses=ref.trace.count("cc-loss"))
    result.add_row(
        path=f"2x500 kbit/s sprayed (skew {delay_skew * 1000:.0f} ms)",
        rate_kbps=kbps(rate),
        stalls=session.sender.controller.stalls,
        cc_losses=session.trace.count("cc-loss"),
    )
    result.metrics.update(
        single_rate=ref_rate,
        sprayed_rate=rate,
        stalls=session.sender.controller.stalls,
        spurious_reactions=session.trace.count("cc-loss"),
        duplicates=session.receivers[0].cc.duplicates,
    )
    session.close()
    return result


def run_churn(scale: float = 1.0, seed: int = 73, n_receivers: int = 8,
              churn_period: float = 15.0) -> ExperimentResult:
    """Receivers leave (including ackers) and rejoin on a rolling
    schedule; the session must stay alive throughout."""
    duration = 240.0 * scale
    net = Network(seed=seed)
    net.add_host("src")
    net.add_router("R0")
    net.duplex_link("src", "R0", ACCESS)
    names = [f"r{i}" for i in range(n_receivers)]
    for name in names:
        net.add_host(name)
        net.duplex_link("R0", name, LinkSpec(500_000, 0.050, queue_slots=30))
    net.build_routes()

    session = create_session(net, "src", names[: n_receivers // 2],
                             trace_name="churn")
    events: list[tuple[float, str, str]] = []

    def leave(rx_id: str) -> None:
        try:
            rx = session.receiver(rx_id)
        except KeyError:
            return
        events.append((net.sim.now, "leave", rx_id))
        rx.host.unregister_agent("pgm")
        rx.close()
        session.receivers.remove(rx)
        session.members.remove(rx_id)
        net.set_group(session.group, "src", session.members)

    def join(rx_id: str) -> None:
        if rx_id in session.members:
            return
        events.append((net.sim.now, "join", rx_id))
        add_receiver(net, session, rx_id)

    # Rolling churn: every period, one member leaves and one outsider joins.
    period = churn_period * scale if scale < 1 else churn_period
    t = period
    index = 0
    while t < duration - period:
        leaver = names[index % n_receivers]
        joiner = names[(index + n_receivers // 2) % n_receivers]
        net.sim.schedule_at(t, leave, leaver)
        net.sim.schedule_at(t + period / 2, join, joiner)
        index += 1
        t += period
    net.run(until=duration)

    # Rate over the churny middle of the run.
    rate = throughput_bps(session.trace, duration / 4, duration)
    quiet_gap = _longest_data_gap(session.trace, duration / 4, duration)
    result = ExperimentResult(
        name="receiver-churn",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers},
        expectation=(
            "departures — including the current acker's — are absorbed "
            "by re-election and the stall machinery; the session never "
            "dies and throughput stays healthy"
        ),
    )
    result.add_row(
        churn_events=len(events),
        rate_kbps=kbps(rate),
        acker_switches=session.acker_switches,
        stalls=session.sender.controller.stalls,
        longest_tx_gap_s=round(quiet_gap, 2),
    )
    result.metrics.update(
        rate=rate,
        churn_events=len(events),
        switches=session.acker_switches,
        stalls=session.sender.controller.stalls,
        longest_gap=quiet_gap,
        final_members=len(session.members),
    )
    session.close()
    return result


def _longest_data_gap(trace, t0: float, t1: float) -> float:
    times = [r.time for r in trace.records if r.kind == "data" and t0 <= r.time < t1]
    if len(times) < 2:
        return t1 - t0
    return max(b - a for a, b in zip(times, times[1:]))


def run_bursty_loss(scale: float = 1.0, seed: int = 79) -> ExperimentResult:
    """ABL-BURST: equal average loss, independent vs bursty."""
    duration = 180.0 * scale
    result = ExperimentResult(
        name="abl-bursty-loss",
        params={"scale": scale, "seed": seed},
        expectation=(
            "at equal average packet loss, bursts cluster the losses "
            "into fewer congestion *events* — the one-reaction-per-RTT "
            "rule (§3.4) then halves once per burst, so the bursty "
            "link sustains a higher rate (exactly as TCP does); long "
            "bursts may briefly stall the ACK clock, which the stall "
            "machinery absorbs"
        ),
    )
    for pattern in ("bernoulli", "bursty"):
        net = Network(seed=seed)
        net.add_host("src")
        net.add_router("R0")
        net.add_host("rx")
        net.duplex_link("src", "R0", ACCESS)
        fwd, _ = net.duplex_link(
            "R0", "rx", LinkSpec(2_000_000, 0.100, queue_bytes=30_000,
                                 loss_rate=0.02 if pattern == "bernoulli" else 0.0)
        )
        net.build_routes()
        if pattern == "bursty":
            model = GilbertElliottLoss(
                net.rng.stream("burst"),
                p_good_to_bad=0.004, p_bad_to_good=0.2,
                good_loss=0.0, bad_loss=1.0,
            )
            # steady-state: 0.004/(0.204) ≈ 2% average loss, in bursts
            fwd.loss = model
        session = create_session(net, "src", ["rx"], trace_name=pattern)
        net.run(until=duration)
        rx = session.receivers[0]
        rate = throughput_bps(session.trace, duration / 3, duration)
        result.add_row(
            pattern=pattern,
            rate_kbps=kbps(rate),
            raw_loss=round(rx.cc.loss_filter.raw_loss_rate, 4),
            filter_loss=round(rx.loss_rate, 4),
            stalls=session.sender.controller.stalls,
        )
        result.metrics[f"{pattern}:rate"] = rate
        result.metrics[f"{pattern}:raw_loss"] = rx.cc.loss_filter.raw_loss_rate
        result.metrics[f"{pattern}:stalls"] = session.sender.controller.stalls
        session.close()
    return result


def chaos_plan(duration: float) -> FaultPlan:
    """The EXP-CHAOS fault schedule, laid out over ``duration`` seconds.

    Episode times are fractions of the run so the same shape holds at
    any ``scale``: crash the current acker a quarter in, flap the
    bottleneck around the midpoint, then a burst-loss episode, a
    duplication episode, a corruption episode, and a receiver pause in
    the final third.
    """
    return FaultPlan(episodes=(
        NodeCrash(node=ACKER, at=0.25 * duration),
        *flap_link("R0", "R1", first_at=0.45 * duration,
                   down_for=0.02 * duration, up_for=0.05 * duration, cycles=3),
        BurstLoss("R0", "R1", at=0.70 * duration, duration=0.03 * duration,
                  loss_rate=0.8),
        Duplication("R0", "R1", at=0.75 * duration, duration=0.08 * duration,
                    rate=0.2),
        Corruption("R0", "R1", at=0.80 * duration, duration=0.08 * duration,
                   rate=0.05),
        NodePause(node="r1", at=0.85 * duration, duration=0.05 * duration),
    ))


def run_chaos(scale: float = 1.0, seed: int = 83,
              n_receivers: int = 4) -> ExperimentResult:
    """EXP-CHAOS: scripted fault injection with the invariant oracle on."""
    duration = 120.0 * scale
    net = dumbbell(1, n_receivers, LinkSpec(500_000, 0.050, queue_slots=30),
                   seed=seed)
    plan = chaos_plan(duration)
    session = create_session(
        net, "h0", [f"r{i}" for i in range(n_receivers)],
        trace_name="chaos", faults=plan,
        check_invariants=True, strict_invariants=False,
    )
    net.run(until=duration)
    session.invariants.verify_now()

    rate = throughput_bps(session.trace, duration / 4, duration)
    quiet_gap = _longest_data_gap(session.trace, duration / 4, duration)
    injector = session.fault_injector
    checker = session.invariants
    result = ExperimentResult(
        name="chaos-fault-injection",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers,
                "episodes": len(plan)},
        expectation=(
            "the session survives an acker crash, a flapping bottleneck, "
            "burst loss, duplication, corruption and a paused receiver "
            "without stalling permanently and with zero runtime invariant "
            "violations; link flaps restart the window from W = T = 1 "
            "(§3.2) rather than deadlocking"
        ),
    )
    result.add_row(
        faults_fired=len(injector.log),
        rate_kbps=kbps(rate),
        acker_switches=session.acker_switches,
        stalls=session.sender.controller.stalls,
        longest_tx_gap_s=round(quiet_gap, 2),
        invariant_sweeps=checker.checks_run,
        violations=len(checker.violations),
    )
    result.metrics.update(
        rate=rate,
        faults_fired=len(injector.log),
        crashes=len(injector.actions("crash")),
        link_downs=len(injector.actions("link-down")),
        switches=session.acker_switches,
        stalls=session.sender.controller.stalls,
        longest_gap=quiet_gap,
        invariant_sweeps=checker.checks_run,
        violations=len(checker.violations),
        odata_sent=session.sender.odata_sent,
    )
    result.attach_telemetry(session, seed=seed)
    session.close()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    for fn in (run_multipath, run_churn, run_bursty_loss, run_chaos):
        print(fn(scale=0.5).report())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
