"""EXP-UNREL — §3.9: pgmcc driving an unreliable, adaptive source.

Reliability off (NAKs are report-only, no RDATA is ever sent); the
application receives the token-generation feedback and adapts its
quality level to the sustainable rate, as a real-time source would.
Run over a lossy link whose random loss sets the fair rate, with the
bottleneck's capacity changing halfway through to show the application
following the transport's feedback.
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..core.feedback import AdaptiveSource, QualityLevel
from ..core.sender_cc import CcConfig
from ..pgm import create_session
from ..simulator import LinkSpec, Network
from .common import ExperimentResult, kbps

LEVELS = (
    QualityLevel("audio-16k", 16_000),
    QualityLevel("low-64k", 64_000),
    QualityLevel("med-160k", 160_000),
    QualityLevel("high-400k", 400_000),
    QualityLevel("hd-900k", 900_000),
)


def run(scale: float = 1.0, seed: int = 43) -> ExperimentResult:
    duration = 240.0 * scale
    squeeze_at = duration / 2

    net = Network(seed=seed)
    net.add_host("src")
    net.add_router("R0")
    net.add_host("rx")
    net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
    fwd, _ = net.duplex_link(
        "R0", "rx", LinkSpec(rate_bps=600_000, delay=0.100, queue_slots=30, loss_rate=0.005)
    )
    net.build_routes()

    app = AdaptiveSource(list(LEVELS), payload_bytes=1400)
    session = create_session(
        net, "src", ["rx"], cc=CcConfig(), reliable=False,
        on_token=app.on_token, trace_name="pgm-unrel",
    )
    # Halfway through, squeeze the bottleneck to a quarter.
    net.sim.schedule_at(squeeze_at, lambda: setattr(fwd, "rate_bps", 150_000))
    net.run(until=duration)

    warm = duration / 8
    rate_before = throughput_bps(session.trace, warm, squeeze_at)
    rate_after = throughput_bps(session.trace, squeeze_at + warm, duration)
    level_before = _level_at(app, squeeze_at)
    level_after = _level_at(app, duration)

    result = ExperimentResult(
        name="unreliable-mode",
        params={"scale": scale, "seed": seed},
        expectation=(
            "the controller works without repairs; token feedback lets "
            "the application track the sustainable rate, stepping its "
            "quality level down when the link is squeezed"
        ),
    )
    result.add_row(window="wide link", rate_kbps=kbps(rate_before), level=level_before)
    result.add_row(window="squeezed", rate_kbps=kbps(rate_after), level=level_after)
    result.metrics.update(
        rate_before=rate_before,
        rate_after=rate_after,
        level_before=level_before,
        level_after=level_after,
        level_changes=list(app.level_changes),
        rdata_sent=session.sender.rdata_sent,
        naks_received=session.sender.naks_received,
        redundancy_share=app.redundancy_share,
    )
    result.attach_telemetry(session, seed=seed)
    session.close()
    return result


def _level_at(app: AdaptiveSource, time: float) -> str:
    current = app.levels[0].name
    for t, name in app.level_changes:
        if t > time:
            break
        current = name
    return current


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
