"""Experiment runners: one per figure of the paper's §4, plus
ablations over the design knobs.

Each module exposes ``run(scale=1.0, ...) -> ExperimentResult``;
``scale`` shrinks durations for quick runs.  ``main()`` prints the
figure's table.
"""

from . import (
    ablations,
    drop_to_zero,
    fairness_sweep,
    fec_scaling,
    robustness,
    scalability,
    fig2_loss_filter,
    fig3_intra_fairness,
    fig4_inter_fairness,
    fig5_acker_selection,
    fig6_heterogeneous_rtt,
    fig7_uncorrelated_loss,
    unreliable_mode,
)
from .common import ExperimentResult, kbps

__all__ = [
    "ablations",
    "drop_to_zero",
    "fairness_sweep",
    "fec_scaling",
    "robustness",
    "scalability",
    "fig2_loss_filter",
    "fig3_intra_fairness",
    "fig4_inter_fairness",
    "fig5_acker_selection",
    "fig6_heterogeneous_rtt",
    "fig7_uncorrelated_loss",
    "unreliable_mode",
    "ExperimentResult",
    "kbps",
]
