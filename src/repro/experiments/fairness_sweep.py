"""EXP-SWEEP — §4.3's "large number of experiments".

The paper: "In order to verify the behaviour of competing TCP and
pgmcc flows, we have run a large number of experiments with the two
types of flows and different bottleneck configurations in terms of
rate and queue size, both for lossy and non-lossy links.  In general,
we see that there is a good sharing of bandwidth between TCP and pgmcc
flows in all configurations we tested, and the flows do not starve
each other."

This runner executes that grid — bottleneck rate × queue size ×
loss — and reports the pgmcc/TCP ratio per cell.  The paper's
acceptance criterion is *no starvation in any cell*; short-timescale
unfairness ("one of the flows might temporarily get a much larger
share") is expected at low bandwidths where the packet count in
transit is low.
"""

from __future__ import annotations

from ..analysis import throughput_ratio
from ..core.sender_cc import CcConfig
from ..pgm import create_session
from ..simulator import LinkSpec, dumbbell
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps

#: the grid: (rate_bps, queue_slots, loss_rate)
DEFAULT_GRID = tuple(
    (rate, queue, loss)
    for rate in (250_000, 500_000, 1_000_000)
    for queue in (10, 30, 60)
    for loss in (0.0, 0.02)
)


def run_cell(rate: float, queue: int, loss: float, duration: float,
             seed: int, delayed_acks: bool = False) -> dict:
    spec = LinkSpec(rate_bps=rate, delay=0.050, queue_slots=queue,
                    loss_rate=loss)
    net = dumbbell(2, 2, spec, seed=seed)
    session = create_session(net, "h0", ["r0"], cc=CcConfig())
    tcp = create_tcp_flow(net, "h1", "r1", start_at=duration / 8,
                          delayed_acks=delayed_acks)
    net.run(until=duration)
    window = (duration / 3, duration)
    pgm = session.throughput_bps(*window)
    t = tcp.throughput_bps(*window)
    out = {
        "pgm": pgm,
        "tcp": t,
        "ratio": throughput_ratio(pgm, t),
        "stalls": session.sender.controller.stalls,
    }
    session.close()
    tcp.close()
    return out


def run(scale: float = 1.0, seed: int = 83,
        grid: tuple = DEFAULT_GRID, delayed_acks: bool = False) -> ExperimentResult:
    duration = 180.0 * scale
    result = ExperimentResult(
        name="fairness-sweep",
        params={"scale": scale, "seed": seed, "cells": len(grid),
                "delayed_acks": delayed_acks},
        expectation=(
            "good sharing in all configurations tested; the flows do "
            "not starve each other (short-timescale burstiness is "
            "expected at low bottleneck bandwidths)"
        ),
    )
    worst_ratio = 0.0
    worst_cell = None
    for i, (rate, queue, loss) in enumerate(grid):
        cell = run_cell(rate, queue, loss, duration, seed + i,
                        delayed_acks=delayed_acks)
        result.add_row(
            rate_kbps=kbps(rate),
            queue_slots=queue,
            loss=loss,
            pgm_kbps=kbps(cell["pgm"]),
            tcp_kbps=kbps(cell["tcp"]),
            ratio=round(cell["ratio"], 2),
            stalls=cell["stalls"],
        )
        key = f"{int(rate / 1000)}k/q{queue}/l{loss}"
        result.metrics[f"{key}:ratio"] = cell["ratio"]
        result.metrics[f"{key}:pgm"] = cell["pgm"]
        result.metrics[f"{key}:tcp"] = cell["tcp"]
        if cell["ratio"] > worst_ratio:
            worst_ratio = cell["ratio"]
            worst_cell = key
    result.metrics["worst_ratio"] = worst_ratio
    result.metrics["worst_cell"] = worst_cell
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.5).report())


if __name__ == "__main__":  # pragma: no cover
    main()
