"""EXP-RESILIENCE: partition-tolerant session recovery under an SLO.

The paper assumes the feedback path exists; this experiment measures
what the reproduction does when it *doesn't*.  Every registered
controller backend (:mod:`repro.core.controller`) runs — with the
acker-liveness watchdog attached (``liveness=True``) — through three
fault scenarios on the non-lossy dumbbell:

``partition``
    The topology is bisected between the routers for 15 % of the run:
    no data, no feedback, nothing crosses.  On heal the session must
    re-elect, repair (or resync past) the outage span and return to
    its pre-fault rate.
``blackhole``
    A :class:`~repro.simulator.faults.ControlBlackhole` eats every
    ACK/NAK on the reverse bottleneck while data keeps flowing — the
    asymmetric-failure case the watchdog's degraded mode exists for
    (feedback loss must not become an unbounded stall-backoff spiral).
``acker-crash``
    The current acker's host dies permanently
    (:class:`~repro.simulator.faults.NodeCrash` on the
    :data:`~repro.simulator.faults.ACKER` sentinel).  Liveness here is
    detection speed: the watchdog demotes on the first ACK timeout
    rather than after :data:`~repro.core.sender_cc.ELICIT_AFTER_STALLS`
    stall backoffs.

**Time-to-recover (TTR)** — the headline metric — is measured by a
deterministic sim-clock delivery sampler: the first post-heal sampling
bin whose group-wide delivery rate reaches
:data:`RECOVERY_FRACTION` of the pre-fault rate, minus the heal time.
The SLO oracle is ``TTR <= TTR_SLO_S`` (:data:`TTR_SLO_RTT_MULTIPLE`
path RTTs).  Each cell also reports p99 stall duration, the fraction
of pre-fault goodput retained at the end of the run, resyncs and
unrecoverable loss from the ``recovery`` block of the v2 summary.

One extra baseline cell re-runs the pgmcc acker-crash scenario with
the watchdog *disabled*, so the report can state the watchdog's value
as a number: ``ttr_improvement_s = TTR(stall-only) - TTR(watchdog)``,
asserted positive by the ``watchdog_faster`` oracle.

Every session runs under the strict runtime invariant checker — a
single window/token-accounting violation during any fault or heal
aborts the experiment.  Sessions are digest-stable, so the manifest
entry is identical across ``-j1`` / ``-jN`` / cached runs.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.controller import controller_names
from ..pgm import create_session
from ..pgm.session import SessionConfig
from ..simulator import (
    ACKER,
    NON_LOSSY,
    ControlBlackhole,
    FaultPlan,
    NodeCrash,
    Partition,
    dumbbell,
)
from .common import ExperimentResult

#: scenario ids, in table order
SCENARIOS = ("partition", "blackhole", "acker-crash")

#: approximate forward+return path latency of the NON_LOSSY dumbbell
#: (three 50 ms hops each way); the SLO is expressed in these units.
BASE_RTT_S = 0.3

#: the recovery SLO: time-to-recover within this many path RTTs.  The
#: budget covers detection (an ACK-timeout of ~2 loaded RTTs), one
#: election round trip and the slow-start rate rebuild after the
#: recovery restart.
TTR_SLO_RTT_MULTIPLE = 15.0

#: absolute SLO bound (seconds) for window-based backends
TTR_SLO_S = TTR_SLO_RTT_MULTIPLE * BASE_RTT_S

#: rate-based backends (``Controller.kind == "rate"``, i.e. tfrc) pay
#: a documented smoothness tax: the TFRC increase rule rebuilds the
#: rate over many RTTs by design, so their recovery budget is wider.
#: This is a property of the backend's equation, not of the liveness
#: layer — detection and re-election land in the same few RTTs.
RATE_TTR_SLO_RTT_MULTIPLE = 50.0

RATE_TTR_SLO_S = RATE_TTR_SLO_RTT_MULTIPLE * BASE_RTT_S

#: a post-heal sampling bin "recovers" when its group-wide delivery
#: rate reaches this fraction of the pre-fault rate.
RECOVERY_FRACTION = 0.5

#: delivery-sampler bin width (simulated seconds)
SAMPLE_DT = 0.25

#: number of group receivers (r0..rN-1 on the dumbbell's right side)
N_RECEIVERS = 3


class DeliverySampler:
    """Sim-clock sampler of the group-wide cumulative delivery count.

    Scheduled like any other event, so the sample series — and every
    metric derived from it — is deterministic for a ``(seed, plan)``
    pair regardless of host timing or worker count.
    """

    def __init__(self, sim, receivers, dt: float = SAMPLE_DT):
        self.sim = sim
        self.receivers = receivers
        self.dt = dt
        #: [(t, total delivered at t), ...] from t=0
        self.samples: list[tuple[float, int]] = []
        self._tick()

    def _tick(self) -> None:
        self.samples.append(
            (self.sim.now, sum(rx.delivered for rx in self.receivers)))
        self.sim.schedule(self.dt, self._tick)

    def rates(self) -> list[tuple[float, float, float]]:
        """Per-bin delivery rates: ``[(t_start, t_end, pkts/s), ...]``."""
        out = []
        for (t0, d0), (t1, d1) in zip(self.samples, self.samples[1:]):
            if t1 > t0:
                out.append((t0, t1, (d1 - d0) / (t1 - t0)))
        return out

    def mean_rate(self, start: float, end: float) -> float:
        """Mean delivery rate over bins fully inside ``[start, end]``."""
        window = [r for t0, t1, r in self.rates()
                  if t0 >= start and t1 <= end]
        return sum(window) / len(window) if window else 0.0

    def time_to_recover(self, fault_at: float, heal_at: float,
                        pre_window: float) -> Optional[float]:
        """Time-to-recover, impact-aware.

        Finds the first *impacted* bin (rate below
        :data:`RECOVERY_FRACTION` of the pre-fault mean) at or after
        ``fault_at``, then the first bin at or after it whose rate is
        back above the threshold.  Returns that bin's end minus
        ``heal_at`` (clamped to 0 — recovering faster than the fault
        heals is a zero, not a negative), ``0.0`` when the fault never
        dented the delivery rate, and ``None`` when the run never
        recovers.  For permanent faults (``heal_at == fault_at``) this
        measures the full disruption window: detection + re-election +
        rate rebuild."""
        pre = self.mean_rate(fault_at - pre_window, fault_at)
        if pre <= 0:
            return None
        threshold = RECOVERY_FRACTION * pre
        impacted = False
        for t0, t1, rate in self.rates():
            if t0 < fault_at:
                continue
            if not impacted:
                impacted = rate < threshold
            if impacted and rate >= threshold:
                return max(0.0, t1 - heal_at)
        return 0.0 if not impacted else None


def _fault_plan(scenario: str, fault_at: float,
                fault_duration: float) -> tuple[FaultPlan, float]:
    """The scenario's fault schedule and its heal time (when recovery
    can physically begin)."""
    if scenario == "partition":
        receivers = tuple(f"r{i}" for i in range(N_RECEIVERS))
        plan = FaultPlan((
            Partition(side_a=("h0", "R0"), side_b=("R1",) + receivers,
                      at=fault_at, duration=fault_duration),
        ))
        return plan, fault_at + fault_duration
    if scenario == "blackhole":
        plan = FaultPlan((
            ControlBlackhole(a="R1", b="R0", at=fault_at,
                             duration=fault_duration,
                             kinds=("Ack", "Nak")),
        ))
        return plan, fault_at + fault_duration
    if scenario == "acker-crash":
        # Permanent: the heal time is the crash itself — recovery is
        # electing a live acker, and the group is down one receiver
        # (the 50% recovery threshold absorbs the smaller group).
        return FaultPlan((NodeCrash(ACKER, at=fault_at),)), fault_at
    raise ValueError(f"unknown scenario {scenario!r}")


def run_bout(controller: str, scenario: str, duration: float,
             seed: int = 31, liveness: bool = True,
             result: Optional[ExperimentResult] = None) -> dict:
    """One controller through one fault scenario; returns the cell."""
    fault_at = 0.4 * duration
    fault_duration = 0.15 * duration
    plan, heal_at = _fault_plan(scenario, fault_at, fault_duration)
    net = dumbbell(1, N_RECEIVERS, NON_LOSSY, seed=seed)
    session = create_session(
        net, "h0", [f"r{i}" for i in range(N_RECEIVERS)],
        config=SessionConfig(
            controller=controller,
            liveness=liveness,
            faults=plan,
            check_invariants=True, strict_invariants=True,
            trace_name=f"resilience-{controller}-{scenario}",
        ),
    )
    sampler = DeliverySampler(net.sim, session.receivers)
    backend_kind = session.sender.controller.backend.kind
    net.run(until=duration)
    session.invariants.verify_now()

    pre_window = 0.2 * duration
    ttr = sampler.time_to_recover(fault_at, heal_at, pre_window)
    slo_s = TTR_SLO_S if backend_kind == "window" else RATE_TTR_SLO_S
    pre_rate = sampler.mean_rate(fault_at - pre_window, fault_at)
    post_rate = sampler.mean_rate(duration - pre_window, duration)
    summary = session.summary()
    recovery = summary["recovery"]
    stall_hist = summary["stall_duration"]
    cell = {
        "controller": controller,
        "scenario": scenario,
        "liveness": liveness,
        "kind": backend_kind,
        "ttr_s": None if ttr is None else round(ttr, 3),
        "slo_s": slo_s,
        "slo_ok": ttr is not None and ttr <= slo_s,
        "p99_stall_s": round((stall_hist["p99"] or 0.0)
                             if stall_hist else 0.0, 3),
        "goodput_retained": round(post_rate / pre_rate, 3) if pre_rate else 0.0,
        "demotions": recovery["demotions"],
        "degraded_entries": recovery["degraded_entries"],
        "degraded_time_s": round(recovery["degraded_time_s"], 3),
        "resyncs": recovery["resyncs"],
        "unrecoverable": recovery["unrecoverable_loss"],
        "stalls": summary["stalls"],
        "invariant_violations": len(session.invariants.violations),
    }
    if result is not None:
        result.attach_telemetry(session, seed=seed, controller=controller,
                                scenario=scenario)
    session.close()
    return cell


def run_cell(scale: float = 1.0, seed: int = 31,
             controller: str = "pgmcc", scenario: str = "partition",
             liveness: bool = True) -> ExperimentResult:
    """One resilience bout as a standalone experiment (the sweep cell).

    Exposes ``liveness`` as a real parameter, so a sweep can state the
    watchdog's value as a per-axis delta (the monolithic ``run()``
    hard-codes a single watchdog-off baseline cell).
    """
    duration = 60.0 * scale
    result = ExperimentResult(
        name=f"resilience-cell-{controller}-{scenario}",
        params={"scale": scale, "seed": seed, "controller": controller,
                "scenario": scenario, "liveness": liveness},
        expectation="one cell of the EXP-RESILIENCE fault matrix",
    )
    cell = run_bout(controller, scenario, duration, seed=seed,
                    liveness=liveness)
    result.add_row(**cell)
    for key, value in cell.items():
        if key not in ("controller", "scenario", "kind", "liveness"):
            result.metrics[key] = value
    result.metrics["recovered"] = cell["ttr_s"] is not None
    return result


def render_markdown(result: ExperimentResult) -> str:
    """The recovery matrix as a standalone markdown report."""
    lines = [
        "# EXP-RESILIENCE — partition-tolerant recovery",
        "",
        f"Scenarios: {', '.join(SCENARIOS)} · SLO: TTR ≤ "
        f"{TTR_SLO_S:.1f}s ({TTR_SLO_RTT_MULTIPLE:.0f} × "
        f"{BASE_RTT_S:.1f}s path RTT; rate-based backends "
        f"{RATE_TTR_SLO_S:.1f}s) · recovery threshold "
        f"{int(RECOVERY_FRACTION * 100)}% of pre-fault delivery rate",
        "",
    ]
    if result.rows:
        cols = list(result.rows[0].keys())
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in result.rows:
            lines.append("| " + " | ".join(str(row.get(c, "")) for c in cols)
                         + " |")
    lines += [
        "",
        "## Watchdog vs stall timer (pgmcc, acker-crash)",
        "",
        "| detector | TTR (s) |",
        "|---|---|",
        f"| liveness watchdog | {result.metrics.get('ttr_watchdog_s')} |",
        f"| stall timer only | {result.metrics.get('ttr_stall_only_s')} |",
        "",
        f"- watchdog faster: **{result.metrics.get('watchdog_faster')}** "
        f"(improvement {result.metrics.get('ttr_improvement_s')}s)",
        f"- all cells recovered: **{result.metrics.get('all_recovered')}**",
        f"- all cells within SLO: **{result.metrics.get('all_slo_ok')}**",
        f"- invariant violations: "
        f"**{result.metrics.get('total_invariant_violations')}**",
        "",
        result.expectation,
        "",
    ]
    return "\n".join(lines)


def run(scale: float = 1.0, seed: int = 31,
        controllers: Optional[tuple[str, ...]] = None) -> ExperimentResult:
    duration = 60.0 * scale
    names = tuple(controllers) if controllers else controller_names()
    result = ExperimentResult(
        name="resilience",
        params={"scale": scale, "seed": seed, "controllers": list(names),
                "scenarios": list(SCENARIOS), "ttr_slo_s": TTR_SLO_S,
                "rate_ttr_slo_s": RATE_TTR_SLO_S,
                "recovery_fraction": RECOVERY_FRACTION,
                "n_receivers": N_RECEIVERS},
        expectation=(
            "every controller recovers from every fault scenario within "
            "the TTR SLO with zero runtime-invariant violations, and the "
            "liveness watchdog recovers the acker-crash strictly faster "
            "than the generic stall timer alone"
        ),
    )
    cells: dict[tuple[str, str], dict] = {}
    for name in names:
        for scenario in SCENARIOS:
            # Ship one session-metrics document: pgmcc under partition
            # (the scenario the liveness gauges were built for).
            attach = result if (name == "pgmcc"
                                and scenario == "partition") else None
            cells[(name, scenario)] = run_bout(
                name, scenario, duration, seed=seed, result=attach)
    for (name, scenario), cell in sorted(cells.items()):
        result.add_row(**cell)

    # Baseline: same crash, watchdog off — the generic stall machinery
    # (two backed-off stall restarts before an election is solicited)
    # is the only recovery path.
    baseline = run_bout("pgmcc", "acker-crash", duration, seed=seed,
                        liveness=False)
    result.add_row(**baseline)

    for (name, scenario), cell in sorted(cells.items()):
        prefix = f"{name}:{scenario}"
        for key in ("ttr_s", "slo_ok", "p99_stall_s", "goodput_retained",
                    "resyncs", "unrecoverable", "invariant_violations"):
            result.metrics[f"{prefix}:{key}"] = cell[key]

    all_cells = list(cells.values())
    result.metrics["all_recovered"] = all(
        c["ttr_s"] is not None for c in all_cells)
    result.metrics["all_slo_ok"] = all(c["slo_ok"] for c in all_cells)
    result.metrics["total_invariant_violations"] = sum(
        c["invariant_violations"] for c in all_cells) + \
        baseline["invariant_violations"]
    if "pgmcc" in names:
        wd_ttr = cells[("pgmcc", "acker-crash")]["ttr_s"]
        st_ttr = baseline["ttr_s"]
        result.metrics["ttr_watchdog_s"] = wd_ttr
        result.metrics["ttr_stall_only_s"] = st_ttr
        improvement = (None if wd_ttr is None or st_ttr is None
                       else round(st_ttr - wd_ttr, 3))
        result.metrics["ttr_improvement_s"] = improvement
        result.metrics["watchdog_faster"] = (
            improvement is not None and improvement > 0)
    result.metrics["markdown_report"] = render_markdown(result)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description="partition resilience")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--markdown", type=pathlib.Path, default=None,
                        help="also write the markdown report here")
    args = parser.parse_args()
    result = run(scale=args.scale)
    print(result.report())
    if args.markdown is not None:
        args.markdown.write_text(result.metrics["markdown_report"])
        print(f"markdown report -> {args.markdown}")


if __name__ == "__main__":  # pragma: no cover
    main()
