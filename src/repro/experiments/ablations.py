"""Ablations over the design choices the paper calls out.

* ABL-C (§3.5): sweep of the switch bias constant ``c`` — between 0.6
  and 0.8 it removes unnecessary acker switches without hurting
  selection accuracy; ``c = 1`` shows the spurious switches.
* ABL-RTT (§3.2.1): sequence-based vs time-based RTT in the election —
  the paper's NS runs found no better behaviour from timestamps.
* ABL-DUP (§5): dupack threshold — preliminary tests showed no
  significant fairness impact.
* ABL-SS (§3.4): the fixed slow-start threshold of 6 packets.
* ABL-NE (§3.7): NE suppression off / on / rx_loss-aware.

Plus the §5 future-work extensions implemented in this reproduction:

* ABL-MODEL: the simple ``1/(RTT·√p)`` election model vs the full
  Padhye equation [15], in the footnote-3 scenario (a low-RTT but very
  lossy receiver against a high-RTT, low-loss one).
* ABL-ADSS: adaptive slow-start threshold vs the fixed 6.
* ABL-TFRC: the paper's low-pass loss filter vs TFRC's average loss
  interval method.
"""

from __future__ import annotations

from .common import ExperimentResult, kbps
from . import fig4_inter_fairness, fig5_acker_selection, fig6_heterogeneous_rtt
from ..simulator import NON_LOSSY


def run_switch_bias(scale: float = 1.0, seed: int = 23,
                    cs: tuple[float, ...] = (1.0, 0.9, 0.75, 0.6)) -> ExperimentResult:
    """ABL-C: Fig. 4 topology (3 co-located receivers + TCP), c sweep."""
    result = ExperimentResult(
        name="abl-switch-bias",
        params={"scale": scale, "seed": seed, "cs": cs},
        expectation=(
            "c in [0.6, 0.8] removes the (unnecessary) acker switches "
            "seen at c=1 among equivalent receivers, with no accuracy "
            "or throughput penalty"
        ),
    )
    for c in cs:
        case = fig4_inter_fairness.run_case(
            NON_LOSSY, f"c={c}", 240.0 * scale, 80.0 * scale, 200.0 * scale,
            c=c, seed=seed,
        )
        result.add_row(
            c=c,
            acker_switches=case["acker_switches"],
            pgm_shared_kbps=kbps(case["pgm_shared"]),
            tcp_shared_kbps=kbps(case["tcp_shared"]),
            ratio=round(case["ratio"], 2),
        )
        result.metrics[f"c={c}:switches"] = case["acker_switches"]
        result.metrics[f"c={c}:pgm_shared"] = case["pgm_shared"]
        result.metrics[f"c={c}:ratio"] = case["ratio"]
    return result


def run_rtt_mode(scale: float = 1.0, seed: int = 29) -> ExperimentResult:
    """ABL-RTT: Fig. 5 scenario under both RTT measurement modes."""
    result = ExperimentResult(
        name="abl-rtt-mode",
        params={"scale": scale, "seed": seed},
        expectation=(
            "time-based RTT measurements do not yield any better "
            "behaviour than sequence-based ones (same plateaus, similar "
            "switch counts)"
        ),
    )
    for mode in ("seq", "time"):
        sub = fig5_acker_selection.run(scale=scale, seed=seed, rtt_mode=mode)
        result.add_row(
            rtt_mode=mode,
            plateau1_kbps=kbps(sub.metrics["plateau1"]),
            plateau2_kbps=kbps(sub.metrics["plateau2"]),
            plateau3_kbps=kbps(sub.metrics["plateau3"]),
            plateau4_kbps=kbps(sub.metrics["plateau4"]),
            switches=sub.metrics["switch_count"],
        )
        for phase in (1, 2, 3, 4):
            result.metrics[f"{mode}:plateau{phase}"] = sub.metrics[f"plateau{phase}"]
        result.metrics[f"{mode}:switches"] = sub.metrics["switch_count"]
    return result


def run_dupack(scale: float = 1.0, seed: int = 31,
               thresholds: tuple[int, ...] = (2, 3, 4, 5)) -> ExperimentResult:
    """ABL-DUP: dupack threshold sweep on the non-lossy Fig. 4 case."""
    result = ExperimentResult(
        name="abl-dupack",
        params={"scale": scale, "seed": seed, "thresholds": thresholds},
        expectation="fairness with TCP is not significantly impacted",
    )
    for threshold in thresholds:
        case = fig4_inter_fairness.run_case(
            NON_LOSSY, f"dupack={threshold}", 240.0 * scale, 80.0 * scale,
            200.0 * scale, dupack_threshold=threshold, seed=seed,
        )
        result.add_row(
            dupack_threshold=threshold,
            pgm_shared_kbps=kbps(case["pgm_shared"]),
            tcp_shared_kbps=kbps(case["tcp_shared"]),
            ratio=round(case["ratio"], 2),
            pgm_stalls=case["pgm_stalls"],
        )
        result.metrics[f"dupack={threshold}:ratio"] = case["ratio"]
        result.metrics[f"dupack={threshold}:pgm_shared"] = case["pgm_shared"]
    return result


def run_ssthresh(scale: float = 1.0, seed: int = 37,
                 thresholds: tuple[int, ...] = (2, 6, 16, 64)) -> ExperimentResult:
    """ABL-SS: the fixed exponential-opening limit (paper: 6)."""
    result = ExperimentResult(
        name="abl-ssthresh",
        params={"scale": scale, "seed": seed, "thresholds": thresholds},
        expectation=(
            "6 packets opens past the dupack threshold without the "
            "over-aggression of a large adaptive threshold; tiny values "
            "risk stalls with low network buffering"
        ),
    )
    for threshold in thresholds:
        case = fig4_inter_fairness.run_case(
            NON_LOSSY, f"ssthresh={threshold}", 240.0 * scale, 80.0 * scale,
            200.0 * scale, ssthresh=threshold, seed=seed,
        )
        result.add_row(
            ssthresh=threshold,
            pgm_shared_kbps=kbps(case["pgm_shared"]),
            tcp_shared_kbps=kbps(case["tcp_shared"]),
            ratio=round(case["ratio"], 2),
            pgm_stalls=case["pgm_stalls"],
        )
        result.metrics[f"ssthresh={threshold}:ratio"] = case["ratio"]
        result.metrics[f"ssthresh={threshold}:stalls"] = case["pgm_stalls"]
    return result


def run_ne_suppression(scale: float = 1.0, seed: int = 41) -> ExperimentResult:
    """ABL-NE: §3.7 — suppression does not break the election; the
    rx_loss-aware rule forwards worse reports through NEs."""
    result = ExperimentResult(
        name="abl-ne-suppression",
        params={"scale": scale, "seed": seed},
        expectation=(
            "suppression does not pose problems for the election at "
            "small scale; the rx_loss rule lets reports with higher "
            "loss through at minimal NE cost"
        ),
    )
    duration = 240.0 * scale
    for suppression, aware, label in (
        (False, False, "no-NE"),
        (True, False, "NE-suppression"),
        (True, True, "NE-rx-loss-aware"),
    ):
        case = fig6_heterogeneous_rtt.run_case(suppression, aware, duration, seed)
        result.add_row(
            case=label,
            pgm_kbps=kbps(case["pgm_rate"]),
            tcp_kbps=kbps(case["tcp_rate"]),
            ratio=round(case["ratio"], 2),
            naks_at_source=case["naks_at_source"],
            switches=case["switches"],
        )
        for key in ("pgm_rate", "tcp_rate", "ratio", "naks_at_source", "switches",
                    "ne_naks_suppressed", "ne_naks_forwarded"):
            result.metrics[f"{label}:{key}"] = case[key]
    return result


def run_throughput_model(scale: float = 1.0, seed: int = 47) -> ExperimentResult:
    """ABL-MODEL: footnote 3's pathological pairing, live.

    One receiver sits behind a short (10 ms) but heavily lossy (18 %)
    link; the other behind a long (300 ms), almost clean (0.5 %) one.
    The simple model overestimates throughput at high loss rates and
    tends to keep the far receiver as acker; the Padhye model's timeout
    term identifies the lossy receiver as the real bottleneck, and the
    session rate drops accordingly.
    """
    from ..core.sender_cc import CcConfig
    from ..pgm import create_session
    from ..simulator import LinkSpec, Network
    from ..analysis import throughput_bps

    result = ExperimentResult(
        name="abl-throughput-model",
        params={"scale": scale, "seed": seed},
        expectation=(
            "footnote 3: at loss rates above ~5% the simple equation "
            "overestimates throughput, so the lossy receiver can lose "
            "the election to a far-but-clean one; the full [15] model "
            "always identifies it.  Live, the packet-based RTT partly "
            "self-corrects: loss lag inflates the lossy receiver's "
            "rxw_lead gap, so the simple model often still elects it — "
            "the static divergence is isolated in the unit tests"
        ),
    )
    duration = 180.0 * scale
    for model in ("simple", "padhye"):
        net = Network(seed=seed)
        net.add_host("src")
        net.add_router("R0")
        net.duplex_link("src", "R0", LinkSpec(100_000_000, 0.0005, queue_slots=1000))
        net.add_host("lossy")
        net.duplex_link("R0", "lossy", LinkSpec(2_000_000, 0.010, queue_slots=60,
                                                loss_rate=0.18))
        net.add_host("far")
        net.duplex_link("R0", "far", LinkSpec(2_000_000, 0.300, queue_slots=60,
                                              loss_rate=0.005))
        net.build_routes()
        session = create_session(net, "src", ["lossy", "far"],
                                 cc=CcConfig(model=model), trace_name=f"pgm-{model}")
        net.run(until=duration)
        occupancy = _occupancy(session.sender.controller.election.switches,
                               duration / 3, duration)
        dominant = max(occupancy, key=occupancy.get) if occupancy else None
        rate = throughput_bps(session.trace, duration / 3, duration)
        result.add_row(model=model, dominant_acker=dominant,
                       rate_kbps=kbps(rate), switches=session.acker_switches)
        result.metrics[f"{model}:dominant"] = dominant
        result.metrics[f"{model}:rate"] = rate
        result.metrics[f"{model}:occupancy"] = occupancy
        session.close()
    return result


def _occupancy(switches, t0, t1):
    occupancy: dict[str, float] = {}
    current, last = None, t0
    for s in switches:
        if s.time >= t1:
            break
        if current is not None and s.time > t0:
            occupancy[current] = occupancy.get(current, 0.0) + max(s.time, t0) - last
        current, last = s.new, max(s.time, t0)
    if current is not None:
        occupancy[current] = occupancy.get(current, 0.0) + (t1 - last)
    return occupancy


def run_adaptive_ssthresh(scale: float = 1.0, seed: int = 53) -> ExperimentResult:
    """ABL-ADSS: §3.4 future work — adaptive vs fixed slow-start
    threshold.  Measures startup aggressiveness (queue drops in the
    first seconds) and steady fairness with TCP."""
    from ..core.sender_cc import CcConfig
    from ..pgm import create_session
    from ..simulator import NON_LOSSY, dumbbell
    from ..tcp import create_tcp_flow

    result = ExperimentResult(
        name="abl-adaptive-ssthresh",
        params={"scale": scale, "seed": seed},
        expectation=(
            "an adaptive (initially unbounded) threshold opens far more "
            "aggressively — the paper kept the cautious fixed 6 because "
            "at startup the acker choice is least trustworthy; neither "
            "mode starves TCP, but the overshoot-and-crash cycles of "
            "the adaptive variant can cost pgmcc its own share"
        ),
    )
    duration = 160.0 * scale
    for adaptive, label in ((False, "fixed-6"), (True, "adaptive")):
        net = dumbbell(2, 2, NON_LOSSY, seed=seed)
        session = create_session(net, "h0", ["r0"],
                                 cc=CcConfig(adaptive_ssthresh=adaptive))
        tcp = create_tcp_flow(net, "h1", "r1", start_at=duration / 2)
        net.run(until=duration)
        early_drops = net.link("R0", "R1").queue_drops
        pgm = session.throughput_bps(duration * 0.6, duration)
        t = tcp.throughput_bps(duration * 0.6, duration)
        result.add_row(
            mode=label,
            startup_queue_drops_10s=session.trace.between(0, 10 * scale).count("cc-loss"),
            total_drops=early_drops,
            pgm_kbps=kbps(pgm),
            tcp_kbps=kbps(t),
        )
        result.metrics[f"{label}:pgm"] = pgm
        result.metrics[f"{label}:tcp"] = t
        result.metrics[f"{label}:early_cc_losses"] = session.trace.between(
            0, 10 * scale
        ).count("cc-loss")
        session.close()
        tcp.close()
    return result


def run_delayed_acks(scale: float = 1.0, seed: int = 89) -> ExperimentResult:
    """ABL-DELACK: §4.3 notes "there are no delayed ACKs in pgmcc"
    while TCP usually delays them.  Compare fairness against a TCP
    with and without delayed ACKs on the non-lossy bottleneck."""
    from . import fig4_inter_fairness
    from ..simulator import NON_LOSSY

    result = ExperimentResult(
        name="abl-delayed-acks",
        params={"scale": scale, "seed": seed},
        expectation=(
            "delayed ACKs make TCP's window growth a little slower, "
            "shifting the split modestly toward pgmcc; neither variant "
            "changes the no-starvation outcome"
        ),
    )
    for delayed in (False, True):
        case = fig4_inter_fairness.run_case(
            NON_LOSSY, f"delack={delayed}", 240.0 * scale, 80.0 * scale,
            200.0 * scale, delayed_acks=delayed, seed=seed,
        )
        result.add_row(
            tcp_delayed_acks=delayed,
            pgm_shared_kbps=kbps(case["pgm_shared"]),
            tcp_shared_kbps=kbps(case["tcp_shared"]),
            ratio=round(case["ratio"], 2),
        )
        label = "delack" if delayed else "no-delack"
        result.metrics[f"{label}:pgm"] = case["pgm_shared"]
        result.metrics[f"{label}:tcp"] = case["tcp_shared"]
        result.metrics[f"{label}:ratio"] = case["ratio"]
    return result


def run_loss_estimator(scale: float = 1.0, seed: int = 59) -> ExperimentResult:
    """ABL-TFRC: §5 future work — low-pass filter vs TFRC average loss
    interval, on the standard lossy link."""
    from ..pgm import create_session
    from ..simulator import LOSSY, dumbbell

    result = ExperimentResult(
        name="abl-loss-estimator",
        params={"scale": scale, "seed": seed},
        expectation=(
            "both estimators track the 3% link loss; TFRC reacts to "
            "loss *events* so bursts perturb it less, at similar "
            "steady-state accuracy and throughput"
        ),
    )
    duration = 120.0 * scale
    for estimator in ("filter", "tfrc"):
        net = dumbbell(1, 1, LOSSY, seed=seed)
        session = create_session(net, "h0", ["r0"], estimator=estimator)
        rx = session.receivers[0]
        # Sample the estimator output at every packet slot; judge by
        # the steady-state (second half) time average, not a point
        # sample — the filter's instantaneous value fluctuates by
        # design (Fig. 2).
        outputs: list[float] = []
        rx.cc.sample_observer = lambda seq, lost: outputs.append(
            rx.cc.loss_filter.loss_rate
        )
        net.run(until=duration)
        steady = outputs[len(outputs) // 2 :] or [0.0]
        mean_loss = sum(steady) / len(steady)
        raw = rx.cc.loss_filter.raw_loss_rate
        rate = session.throughput_bps(duration / 3, duration)
        result.add_row(
            estimator=estimator,
            mean_loss=round(mean_loss, 4),
            raw_loss=round(raw, 4),
            nominal_loss=0.03,
            rate_kbps=kbps(rate),
        )
        result.metrics[f"{estimator}:loss"] = mean_loss
        result.metrics[f"{estimator}:raw_loss"] = raw
        result.metrics[f"{estimator}:rate"] = rate
        session.close()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    for fn in (run_switch_bias, run_rtt_mode, run_dupack, run_ssthresh,
               run_ne_suppression, run_throughput_model,
               run_adaptive_ssthresh, run_loss_estimator):
        print(fn(scale=0.5).report())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
