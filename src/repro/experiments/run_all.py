"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments.run_all [scale]

``scale`` defaults to 1.0 (paper-faithful durations; a few minutes of
wall time).  The output of this module at scale 1.0 is what
EXPERIMENTS.md records.  A raising experiment no longer aborts the
rest of the report: its traceback is collected and printed at the end,
and the exit status is non-zero.

For a parallel, cached sweep over the same registry use
``python -m repro.runner -j auto`` (see ``repro.runner``).
"""

from __future__ import annotations

import sys

from .common import ExperimentSpec

#: The experiment registry: every figure, extension and ablation of the
#: report, as spawn-safe descriptors (see :class:`ExperimentSpec`).
#: ``repro.runner`` shards this list across a worker pool; this module
#: runs it sequentially in-process.
REGISTRY: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("EXP-F2", "repro.experiments.fig2_loss_filter",
                   description="Fig. 2: loss-rate filter at receivers"),
    ExperimentSpec("EXP-F3", "repro.experiments.fig3_intra_fairness",
                   description="Fig. 3: intra-protocol fairness"),
    ExperimentSpec("EXP-F4", "repro.experiments.fig4_inter_fairness",
                   description="Fig. 4: inter-protocol fairness vs TCP"),
    ExperimentSpec("EXP-F5", "repro.experiments.fig5_acker_selection",
                   description="Fig. 5: acker selection/tracking plateaus"),
    ExperimentSpec("EXP-F6", "repro.experiments.fig6_heterogeneous_rtt",
                   description="Fig. 6: heterogeneous RTTs + NE suppression"),
    ExperimentSpec("EXP-F7", "repro.experiments.fig7_uncorrelated_loss",
                   description="Fig. 7: 50 receivers with uncorrelated loss"),
    ExperimentSpec("EXP-UNREL", "repro.experiments.unreliable_mode",
                   description="unreliable mode: cc without repairs"),
    ExperimentSpec("EXP-FEC", "repro.experiments.fec_scaling", scale_factor=0.5,
                   description="FEC redundancy ladder vs RDATA repair"),
    ExperimentSpec("EXP-DTZ", "repro.experiments.drop_to_zero", scale_factor=0.5,
                   kwargs=(("group_sizes", (1, 10, 40)),),
                   description="drop-to-zero: feedback aggregation collapse"),
    ExperimentSpec("ABL-C", "repro.experiments.ablations", "run_switch_bias",
                   scale_factor=0.5, description="ablation: acker switch bias c"),
    ExperimentSpec("ABL-RTT", "repro.experiments.ablations", "run_rtt_mode",
                   scale_factor=0.5, description="ablation: time vs seq RTT mode"),
    ExperimentSpec("ABL-DUP", "repro.experiments.ablations", "run_dupack",
                   scale_factor=0.5, description="ablation: dupack threshold"),
    ExperimentSpec("ABL-SS", "repro.experiments.ablations", "run_ssthresh",
                   scale_factor=0.5, description="ablation: initial ssthresh"),
    ExperimentSpec("ABL-NE", "repro.experiments.ablations", "run_ne_suppression",
                   scale_factor=0.5, description="ablation: NE NAK suppression"),
    ExperimentSpec("ABL-MODEL", "repro.experiments.ablations", "run_throughput_model",
                   scale_factor=0.5, description="ablation: RTT^2*p throughput models"),
    ExperimentSpec("ABL-ADSS", "repro.experiments.ablations", "run_adaptive_ssthresh",
                   scale_factor=0.5, description="ablation: adaptive ssthresh"),
    ExperimentSpec("ABL-TFRC", "repro.experiments.ablations", "run_loss_estimator",
                   scale_factor=0.5, description="ablation: loss filter vs TFRC estimator"),
    ExperimentSpec("EXP-MPATH", "repro.experiments.robustness", "run_multipath",
                   scale_factor=0.5, description="robustness: multipath reordering"),
    ExperimentSpec("EXP-CHURN", "repro.experiments.robustness", "run_churn",
                   scale_factor=0.5, description="robustness: receiver churn"),
    ExperimentSpec("ABL-BURST", "repro.experiments.robustness", "run_bursty_loss",
                   scale_factor=0.5, description="robustness: bursty (Gilbert) loss"),
    ExperimentSpec("EXP-CHAOS", "repro.experiments.robustness", "run_chaos",
                   scale_factor=0.5, description="chaos: scripted faults + invariants"),
    ExperimentSpec("EXP-ADV", "repro.experiments.adversarial", scale_factor=0.5,
                   description="adversarial: misbehaving receivers vs guard"),
    ExperimentSpec("ABL-DELACK", "repro.experiments.ablations", "run_delayed_acks",
                   scale_factor=0.5, description="ablation: TCP delayed ACKs"),
    ExperimentSpec("EXP-SWEEP", "repro.experiments.fairness_sweep", scale_factor=0.5,
                   description="fairness over the 4.3 configuration grid"),
    ExperimentSpec("EXP-SCALE", "repro.experiments.scalability", scale_factor=0.5,
                   description="scalability: exact ladder to 200, hybrid to 10^6"),
    ExperimentSpec("EXP-ARENA", "repro.experiments.arena", scale_factor=0.5,
                   description="controller arena: pgmcc vs jain/aimd/tfrc"),
    ExperimentSpec("EXP-RESILIENCE", "repro.experiments.resilience",
                   scale_factor=0.5,
                   description="partition/blackhole/acker-crash recovery "
                               "matrix with TTR SLO"),
)

#: Backward-compatible view: ``[(exp_id, fn(scale) -> result), ...]``.
RUNS = [(spec.id, spec.run) for spec in REGISTRY]


def specs_by_id(ids=None) -> list[ExperimentSpec]:
    """Resolve a subset of experiment ids (all when ``ids`` is falsy).

    Raises ``KeyError`` with the list of known ids on an unknown id.
    """
    if not ids:
        return list(REGISTRY)
    by_id = {spec.id: spec for spec in REGISTRY}
    # Ids are normalized case- and separator-insensitively, so the
    # shell-friendly spellings work: exp_arena == exp-arena == EXP-ARENA.
    canonical = {key.upper().replace("_", "-"): key for key in by_id}
    resolved = [canonical.get(str(i).upper().replace("_", "-"), i) for i in ids]
    unknown = [i for i in resolved if i not in by_id]
    if unknown:
        raise KeyError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known ids: {', '.join(by_id)}"
        )
    return [by_id[i] for i in resolved]


def main(scale: float = 1.0) -> int:
    """Run the full registry sequentially; returns the failure count.

    Failures are isolated by the orchestrator: a raising experiment is
    reported at the end, with its traceback, after the rest of the
    report has printed.
    """
    from ..runner import Orchestrator

    failed = []

    def on_outcome(outcome) -> None:
        print(f"\n##### {outcome.id} (wall {outcome.wall_s:.1f}s)")
        if outcome.status == "ok":
            print(outcome.result.report())
        else:
            print(f"FAILED after {outcome.attempts} attempt(s): "
                  f"{outcome.error['type']}: {outcome.error['message']}")
            failed.append(outcome)
        sys.stdout.flush()

    orch = Orchestrator(REGISTRY, scale=scale, jobs=1, inline=True,
                        cache=None, retries=0, on_outcome=on_outcome)
    orch.run()
    if failed:
        print(f"\n##### {len(failed)} experiment(s) FAILED")
        for outcome in failed:
            print(f"\n--- {outcome.id} ---")
            print(outcome.error["traceback"], end="")
    return len(failed)


def main_cli() -> None:
    """Console-script entry point (``pgmcc-experiments [scale]``)."""
    failures = main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main_cli()
