"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments.run_all [scale]

``scale`` defaults to 1.0 (paper-faithful durations; a few minutes of
wall time).  The output of this module at scale 1.0 is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
import time

from . import (
    ablations,
    adversarial,
    drop_to_zero,
    fairness_sweep,
    fec_scaling,
    robustness,
    scalability,
    fig2_loss_filter,
    fig3_intra_fairness,
    fig4_inter_fairness,
    fig5_acker_selection,
    fig6_heterogeneous_rtt,
    fig7_uncorrelated_loss,
    unreliable_mode,
)

RUNS = [
    ("EXP-F2", lambda s: fig2_loss_filter.run(scale=s)),
    ("EXP-F3", lambda s: fig3_intra_fairness.run(scale=s)),
    ("EXP-F4", lambda s: fig4_inter_fairness.run(scale=s)),
    ("EXP-F5", lambda s: fig5_acker_selection.run(scale=s)),
    ("EXP-F6", lambda s: fig6_heterogeneous_rtt.run(scale=s)),
    ("EXP-F7", lambda s: fig7_uncorrelated_loss.run(scale=s)),
    ("EXP-UNREL", lambda s: unreliable_mode.run(scale=s)),
    ("EXP-FEC", lambda s: fec_scaling.run(scale=s / 2)),
    ("EXP-DTZ", lambda s: drop_to_zero.run(scale=s / 2, group_sizes=(1, 10, 40))),
    ("ABL-C", lambda s: ablations.run_switch_bias(scale=s / 2)),
    ("ABL-RTT", lambda s: ablations.run_rtt_mode(scale=s / 2)),
    ("ABL-DUP", lambda s: ablations.run_dupack(scale=s / 2)),
    ("ABL-SS", lambda s: ablations.run_ssthresh(scale=s / 2)),
    ("ABL-NE", lambda s: ablations.run_ne_suppression(scale=s / 2)),
    ("ABL-MODEL", lambda s: ablations.run_throughput_model(scale=s / 2)),
    ("ABL-ADSS", lambda s: ablations.run_adaptive_ssthresh(scale=s / 2)),
    ("ABL-TFRC", lambda s: ablations.run_loss_estimator(scale=s / 2)),
    ("EXP-MPATH", lambda s: robustness.run_multipath(scale=s / 2)),
    ("EXP-CHURN", lambda s: robustness.run_churn(scale=s / 2)),
    ("ABL-BURST", lambda s: robustness.run_bursty_loss(scale=s / 2)),
    ("EXP-CHAOS", lambda s: robustness.run_chaos(scale=s / 2)),
    ("EXP-ADV", lambda s: adversarial.run(scale=s / 2)),
    ("ABL-DELACK", lambda s: ablations.run_delayed_acks(scale=s / 2)),
    ("EXP-SWEEP", lambda s: fairness_sweep.run(scale=s / 2)),
    ("EXP-SCALE", lambda s: scalability.run(scale=s / 2)),
]


def main(scale: float = 1.0) -> None:
    for exp_id, fn in RUNS:
        started = time.time()
        result = fn(scale)
        print(f"\n##### {exp_id} (wall {time.time() - started:.1f}s)")
        print(result.report())
        sys.stdout.flush()


def main_cli() -> None:
    """Console-script entry point (``pgmcc-experiments [scale]``)."""
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)


if __name__ == "__main__":
    main_cli()
