"""The built-in experiment registry + the legacy sequential CLI.

Usage::

    python -m repro.experiments.run_all [runner flags]

This module is now a thin delegate to the ``repro.runner`` CLI — one
flag set for both entry points (``pgmcc-experiments`` accepts exactly
what ``pgmcc-runner`` accepts).  The historic positional ``[scale]``
argument still works but is deprecated; use ``--scale``.

The experiments themselves are registered with
:func:`~repro.experiments.registry.register_experiment` below — one
spec per figure, extension and ablation of the report, each with its
declared parameter schema.  Third-party experiments register through
the same API without editing this file; ``REGISTRY`` is a read-only
live view of the result (report entries, registration order).

For programmatic sequential runs, :func:`main` executes the registry
in-process with failure isolation and prints the classic report.
"""

from __future__ import annotations

import sys

from .common import ExperimentSpec, ParamSpec
from .registry import (RegistryView, register_experiment,
                       registered_specs, resolve_experiment_id)

_SEED = ParamSpec("seed", "int", low=0, help="deterministic RNG seed")
_CONTROLLERS = ParamSpec(
    "controllers", "seq",
    help="subset of registered controller backends (default: all)")

#: Built-in experiments, registered in report order.  A spec is
#: spawn-safe (module/func strings, no callables); ``repro.runner``
#: shards the registry across a worker pool, :func:`main` runs it
#: sequentially in-process.
_BUILTIN_SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("EXP-F2", "repro.experiments.fig2_loss_filter",
                   description="Fig. 2: loss-rate filter at receivers"),
    ExperimentSpec("EXP-F3", "repro.experiments.fig3_intra_fairness",
                   description="Fig. 3: intra-protocol fairness"),
    ExperimentSpec("EXP-F4", "repro.experiments.fig4_inter_fairness",
                   description="Fig. 4: inter-protocol fairness vs TCP"),
    ExperimentSpec("EXP-F5", "repro.experiments.fig5_acker_selection",
                   description="Fig. 5: acker selection/tracking plateaus"),
    ExperimentSpec("EXP-F6", "repro.experiments.fig6_heterogeneous_rtt",
                   description="Fig. 6: heterogeneous RTTs + NE suppression"),
    ExperimentSpec("EXP-F7", "repro.experiments.fig7_uncorrelated_loss",
                   description="Fig. 7: 50 receivers with uncorrelated loss"),
    ExperimentSpec("EXP-UNREL", "repro.experiments.unreliable_mode",
                   description="unreliable mode: cc without repairs"),
    ExperimentSpec("EXP-FEC", "repro.experiments.fec_scaling", scale_factor=0.5,
                   description="FEC redundancy ladder vs RDATA repair"),
    ExperimentSpec("EXP-DTZ", "repro.experiments.drop_to_zero", scale_factor=0.5,
                   kwargs=(("group_sizes", (1, 10, 40)),),
                   params=(ParamSpec("group_sizes", "seq",
                                     default=(1, 10, 40),
                                     help="receiver-group sizes to compare"),),
                   description="drop-to-zero: feedback aggregation collapse"),
    ExperimentSpec("ABL-C", "repro.experiments.ablations", "run_switch_bias",
                   scale_factor=0.5, description="ablation: acker switch bias c"),
    ExperimentSpec("ABL-RTT", "repro.experiments.ablations", "run_rtt_mode",
                   scale_factor=0.5, description="ablation: time vs seq RTT mode"),
    ExperimentSpec("ABL-DUP", "repro.experiments.ablations", "run_dupack",
                   scale_factor=0.5, description="ablation: dupack threshold"),
    ExperimentSpec("ABL-SS", "repro.experiments.ablations", "run_ssthresh",
                   scale_factor=0.5, description="ablation: initial ssthresh"),
    ExperimentSpec("ABL-NE", "repro.experiments.ablations", "run_ne_suppression",
                   scale_factor=0.5, description="ablation: NE NAK suppression"),
    ExperimentSpec("ABL-MODEL", "repro.experiments.ablations", "run_throughput_model",
                   scale_factor=0.5, description="ablation: RTT^2*p throughput models"),
    ExperimentSpec("ABL-ADSS", "repro.experiments.ablations", "run_adaptive_ssthresh",
                   scale_factor=0.5, description="ablation: adaptive ssthresh"),
    ExperimentSpec("ABL-TFRC", "repro.experiments.ablations", "run_loss_estimator",
                   scale_factor=0.5, description="ablation: loss filter vs TFRC estimator"),
    ExperimentSpec("EXP-MPATH", "repro.experiments.robustness", "run_multipath",
                   scale_factor=0.5, description="robustness: multipath reordering"),
    ExperimentSpec("EXP-CHURN", "repro.experiments.robustness", "run_churn",
                   scale_factor=0.5, description="robustness: receiver churn"),
    ExperimentSpec("ABL-BURST", "repro.experiments.robustness", "run_bursty_loss",
                   scale_factor=0.5, description="robustness: bursty (Gilbert) loss"),
    ExperimentSpec("EXP-CHAOS", "repro.experiments.robustness", "run_chaos",
                   scale_factor=0.5, description="chaos: scripted faults + invariants"),
    ExperimentSpec("EXP-ADV", "repro.experiments.adversarial", scale_factor=0.5,
                   description="adversarial: misbehaving receivers vs guard"),
    ExperimentSpec("ABL-DELACK", "repro.experiments.ablations", "run_delayed_acks",
                   scale_factor=0.5, description="ablation: TCP delayed ACKs"),
    ExperimentSpec("EXP-SWEEP", "repro.experiments.fairness_sweep", scale_factor=0.5,
                   description="fairness over the 4.3 configuration grid"),
    ExperimentSpec("EXP-SCALE", "repro.experiments.scalability", scale_factor=0.5,
                   description="scalability: exact ladder to 200, hybrid to 10^6"),
    ExperimentSpec("EXP-ARENA", "repro.experiments.arena", scale_factor=0.5,
                   params=(_SEED, _CONTROLLERS,
                           ParamSpec("n_receivers", "int", default=4, low=2)),
                   description="controller arena: pgmcc vs jain/aimd/tfrc"),
    ExperimentSpec("EXP-RESILIENCE", "repro.experiments.resilience",
                   scale_factor=0.5,
                   params=(_SEED, _CONTROLLERS),
                   description="partition/blackhole/acker-crash recovery "
                               "matrix with TTR SLO"),
    # -- sweep cells: one matrix cell per task, for the sweep DSL -----
    # (hidden: excluded from the default report, addressable by id)
    ExperimentSpec("EXP-ARENA-CELL", "repro.experiments.arena", "run_cell",
                   hidden=True,
                   params=(ParamSpec("seed", "int", default=23, low=0),
                           ParamSpec("n_receivers", "int", default=4, low=2),
                           ParamSpec("controller", "str", default="pgmcc"),
                           ParamSpec("scenario", "str", default="clean-tcp",
                                     choices=("clean-tcp", "fault",
                                              "adversary"))),
                   description="one arena bout: controller x scenario"),
    ExperimentSpec("EXP-RESILIENCE-CELL", "repro.experiments.resilience",
                   "run_cell", hidden=True,
                   params=(ParamSpec("seed", "int", default=31, low=0),
                           ParamSpec("controller", "str", default="pgmcc"),
                           ParamSpec("scenario", "str", default="partition",
                                     choices=("partition", "blackhole",
                                              "acker-crash")),
                           ParamSpec("liveness", "bool", default=True)),
                   description="one recovery bout: controller x fault "
                               "x watchdog on/off"),
)

for _spec in _BUILTIN_SPECS:
    register_experiment(_spec)

#: Backward-compatible registry view: iterates the *live* registry
#: (report entries, registration order), so third-party
#: ``register_experiment`` calls show up here without edits.
REGISTRY = RegistryView()

#: Backward-compatible view: ``[(exp_id, fn(scale) -> result), ...]``.
RUNS = [(spec.id, spec.run) for spec in REGISTRY]


def specs_by_id(ids=None) -> list[ExperimentSpec]:
    """Resolve a subset of experiment ids (all *report* entries when
    ``ids`` is falsy; hidden sweep-cell specs resolve by explicit id).

    Raises ``KeyError`` with the list of known ids on an unknown id.
    """
    if not ids:
        return list(REGISTRY)
    by_id = {spec.id: spec for spec in REGISTRY}
    by_id.update({s.id: s for s in registered_specs(include_hidden=True)})
    # Ids are normalized case- and separator-insensitively, so the
    # shell-friendly spellings work: exp_arena == exp-arena == EXP-ARENA.
    canonical = {key.upper().replace("_", "-"): key for key in by_id}
    resolved = [canonical.get(str(i).upper().replace("_", "-"), i) for i in ids]
    unknown = [i for i in resolved if i not in by_id]
    if unknown:
        raise KeyError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known ids: {', '.join(by_id)}"
        )
    return [by_id[i] for i in resolved]


def main(scale: float = 1.0) -> int:
    """Run the full registry sequentially; returns the failure count.

    Failures are isolated by the orchestrator: a raising experiment is
    reported at the end, with its traceback, after the rest of the
    report has printed.
    """
    from ..runner import Orchestrator

    failed = []

    def on_outcome(outcome) -> None:
        print(f"\n##### {outcome.id} (wall {outcome.wall_s:.1f}s)")
        if outcome.status == "ok":
            print(outcome.result.report())
        else:
            print(f"FAILED after {outcome.attempts} attempt(s): "
                  f"{outcome.error['type']}: {outcome.error['message']}")
            failed.append(outcome)
        sys.stdout.flush()

    orch = Orchestrator(REGISTRY, scale=scale, jobs=1, inline=True,
                        cache=None, retries=0, on_outcome=on_outcome)
    orch.run()
    if failed:
        print(f"\n##### {len(failed)} experiment(s) FAILED")
        for outcome in failed:
            print(f"\n--- {outcome.id} ---")
            print(outcome.error["traceback"], end="")
    return len(failed)


def main_cli(argv: list[str] | None = None) -> None:
    """Console-script entry point (``pgmcc-experiments``).

    A thin delegate to the ``repro.runner`` CLI: both entry points now
    share one flag set (``--scale``, ``-j``, ``--no-cache``, ...).  The
    historic positional ``[scale]`` argument is mapped to ``--scale``
    with a deprecation warning.
    """
    import warnings

    from ..runner.cli import main as runner_main

    argv = list(sys.argv[1:] if argv is None else argv)
    mapped: list[str] = []
    for arg in argv:
        is_scale = False
        if resolve_experiment_id(arg) is None and arg != "run":
            try:
                float(arg)
                is_scale = True
            except ValueError:
                pass
        if is_scale:
            message = ("the positional [scale] argument is deprecated; "
                       f"use --scale {arg}")
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            print(f"warning: {message}", file=sys.stderr)
            mapped += ["--scale", arg]
        else:
            mapped.append(arg)
    sys.exit(runner_main(mapped))


if __name__ == "__main__":
    main_cli()
