"""EXP-ADVERSARIAL: misbehaving receivers vs the sender-side guard.

pgmcc's control loop runs on unauthenticated receiver feedback (§3.2,
§3.5): the acker election believes every reported ``rx_loss`` and the
window clock believes every ACK.  This experiment measures what each
attack from :mod:`repro.pgm.misbehavior` costs the *compliant* part of
the group — and a TCP flow sharing the bottleneck — with the
:class:`~repro.pgm.guard.FeedbackGuard` off versus on.

Setup mirrors Fig. 4's inter-fairness scene: one pgmcc session
(``n_receivers`` receivers, ``r0`` the attacker) shares the non-lossy
bottleneck with one TCP flow.  The headline scenario is the greedy
acker — ackership capture plus optimistic ACKs (it learns the
sender's true lead from SPMs, so every claim is individually
plausible) — which guard-off drives the session far past its
TCP-fair share: the bottleneck drowns in unrepairable queue loss,
in-order delivery at compliant receivers collapses, and the TCP flow
starves.  Guard-on, the cross-channel checks (ACKs overtaking the
attacker's own reported lead; a claimed loss rate contradicting its
loss-free bitmaps) quarantine the attacker within seconds, the §3.6
machinery re-elects an honest acker, and the compliant group runs
within a few percent of the attack-free baseline.

The baseline row runs with the guard *enabled* deliberately: an
all-honest group must show zero quarantines (no false positives).
Every session runs under the runtime invariant checker, including the
quarantined-receivers-are-never-ackers rule.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import throughput_bps
from ..core.sender_cc import CcConfig
from ..pgm import constants as C
from ..pgm import create_session
from ..simulator import (
    NON_LOSSY,
    AckReplay,
    FaultPlan,
    GreedyAcker,
    LinkImpairment,
    NakStorm,
    Throttler,
    dumbbell,
)
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps

#: The misbehaving receiver (always present in the group).
ATTACKER = "r0"

#: Sender rate cap: bounds the optimistic-ACK blow-up at 4x the
#: bottleneck so guard-off runs terminate in reasonable wall time
#: (without a cap the attack climbs until the access links saturate).
MAX_RATE_BPS = 2_000_000


def _attack_plan(kind: Optional[str], duration: float) -> Optional[FaultPlan]:
    """The attack starts 15% in (after the honest session settles)."""
    if kind is None:
        return None
    at = 0.15 * duration
    until_end = duration - at
    episodes = {
        "greedy-acker": (GreedyAcker(ATTACKER, at=at),),
        "throttler": (Throttler(ATTACKER, at=at),),
        "nak-storm": (NakStorm(ATTACKER, at=at, duration=until_end,
                               rate=150.0),),
        # The sender only listens to ACKs from a current/former acker,
        # so the replayer needs the seat: a mild downstream impairment
        # makes r0 the honestly-worst receiver (elected per §3.5), and
        # it then replays its own genuine ACKs — stale duplicate
        # feedback that distorts the sender's clock (spurious dupack
        # losses and stall-timer refreshes).  "impaired" runs the same
        # impairment without the replay: the honest anchor the guard-on
        # replay run should land back on.
        "impaired": (
            LinkImpairment("R1", ATTACKER, at=at, duration=until_end,
                           loss_rate=0.05, both=False),
        ),
        "ack-replay": (
            LinkImpairment("R1", ATTACKER, at=at, duration=until_end,
                           loss_rate=0.05, both=False),
            AckReplay(ATTACKER, at=at, duration=until_end,
                      copies=3, interval=0.05),
        ),
    }
    return FaultPlan(episodes[kind])


def run_scenario(
    kind: Optional[str],
    guard_on: bool,
    duration: float,
    seed: int = 97,
    n_receivers: int = 6,
    result: Optional[ExperimentResult] = None,
) -> dict:
    """One session + one competing TCP flow; returns the measurements.

    ``kind`` is a misbehavior episode kind (or None for the attack-free
    baseline).  Compliant goodput is the mean *in-order delivery* rate
    over the non-attacker receivers in the final two-thirds of the run
    — reliability as the application sees it, which is what repair
    starvation destroys.
    """
    net = dumbbell(2, n_receivers + 1, NON_LOSSY, seed=seed)
    names = [f"r{i}" for i in range(n_receivers)]
    # Fig. 4's paper configuration, where pgmcc and TCP share fairly.
    cc = CcConfig(c=1.0, dupack_threshold=3, ssthresh=6)
    session = create_session(
        net, "h0", names, cc=cc,
        trace_name=f"adv-{kind or 'baseline'}",
        faults=_attack_plan(kind, duration),
        guard=True if guard_on else None,
        max_rate_bps=MAX_RATE_BPS,
        check_invariants=True, strict_invariants=False,
    )
    tcp = create_tcp_flow(net, "h1", f"r{n_receivers}", trace_name="tcp")

    compliant = [rx for rx in session.receivers if rx.rx_id != ATTACKER]
    for rx in compliant:
        rx.deliver = lambda *_: None  # reliable in-order counting
    t0 = duration / 3.0
    snapshot: dict[str, int] = {}
    net.sim.schedule_at(
        t0, lambda: snapshot.update({rx.rx_id: rx.delivered for rx in compliant})
    )
    net.run(until=duration)
    session.invariants.verify_now()

    window = duration - t0
    per_rx = [
        (rx.delivered - snapshot[rx.rx_id]) * 8.0 * C.DEFAULT_PAYLOAD / window
        for rx in compliant
    ]
    guard = session.guard
    out = {
        "kind": kind or "baseline",
        "guard": guard_on,
        "compliant_bps": sum(per_rx) / len(per_rx),
        "tx_bps": throughput_bps(session.trace, t0, duration),
        "tcp_bps": tcp.throughput_bps(t0, duration),
        "quarantines": guard.summary()["quarantines"] if guard else 0,
        "control_blocked": guard.control_blocked if guard else 0,
        "acker_evictions": session.sender.controller.acker_evictions,
        "attacker_is_acker": session.sender.controller.current_acker == ATTACKER,
        "unrecoverable": sum(rx.unrecoverable_data_loss for rx in compliant),
        "invariant_violations": len(session.invariants.violations),
    }
    if result is not None:
        result.attach_telemetry(session, seed=seed, attack=kind or "baseline",
                                guard=guard_on)
    session.close()
    tcp.close()
    return out


#: (kind, guard_on) for every table row, headline attack first.
SCENARIOS: tuple[tuple[Optional[str], bool], ...] = (
    (None, True),
    ("greedy-acker", False),
    ("greedy-acker", True),
    ("throttler", False),
    ("throttler", True),
    ("nak-storm", False),
    ("nak-storm", True),
    ("impaired", True),
    ("ack-replay", False),
    ("ack-replay", True),
)


def run(scale: float = 1.0, seed: int = 97,
        n_receivers: int = 6) -> ExperimentResult:
    duration = 60.0 * scale
    result = ExperimentResult(
        name="adversarial-receivers",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers,
                "attacker": ATTACKER},
        expectation=(
            "guard off, a single greedy acker (ackership capture + "
            "optimistic ACKs) drives the session far past its TCP-fair "
            "share: compliant in-order goodput collapses and the "
            "competing TCP flow starves; guard on, the attacker is "
            "quarantined within seconds and the compliant group runs "
            "within 10% of the attack-free baseline with zero "
            "invariant violations and zero false quarantines"
        ),
    )
    for kind, guard_on in SCENARIOS:
        # Ship one session-metrics document: the headline attack with
        # the guard engaged (the configuration the claim is about).
        attach_to = result if (kind == "greedy-acker" and guard_on) else None
        row = run_scenario(kind, guard_on, duration, seed=seed,
                           n_receivers=n_receivers, result=attach_to)
        result.add_row(
            attack=row["kind"],
            guard="on" if guard_on else "off",
            compliant_kbps=kbps(row["compliant_bps"]),
            tx_kbps=kbps(row["tx_bps"]),
            tcp_kbps=kbps(row["tcp_bps"]),
            quarantines=row["quarantines"],
            evictions=row["acker_evictions"],
            unrecoverable=row["unrecoverable"],
            inv_violations=row["invariant_violations"],
        )
        prefix = f"{row['kind']}:{'on' if guard_on else 'off'}"
        for key in ("compliant_bps", "tx_bps", "tcp_bps", "quarantines",
                    "control_blocked", "acker_evictions", "attacker_is_acker",
                    "unrecoverable", "invariant_violations"):
            result.metrics[f"{prefix}:{key}"] = row[key]
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.5).report())


if __name__ == "__main__":  # pragma: no cover
    main()
