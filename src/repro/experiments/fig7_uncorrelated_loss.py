"""EXP-F7 — Fig. 7: uncorrelated losses, avoiding drop-to-zero.

One pgmcc source with up to 100 receivers behind *independent* links
with 1 % random loss, plus one TCP flow on an identical but separate
link.  At t = 0 the TCP flow and 10 PGM receivers start; at t = 300 s
(scaled) 90 more receivers join.

Single-rate schemes that aggregate loss reports at the source see an
aggregate loss far above any individual receiver's and collapse (the
"drop-to-zero" problem).  pgmcc never computes loss at the source — it
uses receiver-filtered estimates and defers reactions until the new
acker's reports arrive — so the 90-receiver join must not appreciably
change the session's throughput, and the TCP flow on its own link must
be unaffected.

The paper also notes larger tests would need FEC-style repair: with
plain retransmissions and many receivers, repair traffic on the source
link grows with the receiver count.  ``reliable=False`` (report-only
NAKs, §3.9) is therefore an option here, matching how such sessions
would actually be deployed; the default keeps retransmissions on, like
the paper's NS runs.
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..core.sender_cc import CcConfig
from ..pgm import add_receiver, create_session
from ..simulator import LinkSpec, Network
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps

#: each receiver's independent link: 1 % random loss (the paper), high
#: statistical multiplexing -> loss-determined rate.
LEAF = LinkSpec(rate_bps=2_000_000, delay=0.230, queue_bytes=30_000, loss_rate=0.01)
ACCESS = LinkSpec(rate_bps=100_000_000, delay=0.0005, queue_slots=2000)


def build(n_receivers: int, seed: int) -> Network:
    net = Network(seed=seed)
    net.add_host("src")
    net.add_host("ts")
    net.add_router("R0")
    net.duplex_link("src", "R0", ACCESS)
    net.duplex_link("ts", "R0", ACCESS)
    for i in range(n_receivers):
        name = f"r{i}"
        net.add_host(name)
        net.duplex_link("R0", name, LEAF)
    net.add_host("tr")
    net.duplex_link("R0", "tr", LEAF)
    net.build_routes()
    return net


def run(
    scale: float = 1.0,
    seed: int = 17,
    initial_receivers: int = 10,
    total_receivers: int = 100,
    reliable: bool = True,
) -> ExperimentResult:
    duration = 500.0 * scale
    join_time = 300.0 * scale
    net = build(total_receivers, seed)
    session = create_session(
        net,
        "src",
        [f"r{i}" for i in range(initial_receivers)],
        cc=CcConfig(),
        reliable=reliable,
        trace_name="pgm",
    )
    for i in range(initial_receivers, total_receivers):
        add_receiver(net, session, f"r{i}", at=join_time, reliable=reliable)
    tcp = create_tcp_flow(net, "ts", "tr", trace_name="tcp")
    net.run(until=duration)

    warm = join_time / 3
    before = (warm, join_time)
    settle = (duration - join_time) / 5
    after = (join_time + settle, duration)
    pgm_before = throughput_bps(session.trace, *before)
    pgm_after = throughput_bps(session.trace, *after)
    tcp_before = throughput_bps(tcp.trace, *before)
    tcp_after = throughput_bps(tcp.trace, *after)
    change = pgm_after / pgm_before if pgm_before > 0 else float("inf")

    result = ExperimentResult(
        name="fig7-uncorrelated-loss",
        params={
            "scale": scale, "seed": seed, "reliable": reliable,
            "initial_receivers": initial_receivers,
            "total_receivers": total_receivers,
        },
        expectation=(
            "the join of 90 extra receivers with independent 1% loss "
            "does not appreciably change the session throughput (no "
            "drop-to-zero); TCP on its own identical link is unaffected"
        ),
    )
    result.add_row(
        window="before join", pgm_kbps=kbps(pgm_before), tcp_kbps=kbps(tcp_before),
        receivers=initial_receivers,
    )
    result.add_row(
        window="after join", pgm_kbps=kbps(pgm_after), tcp_kbps=kbps(tcp_after),
        receivers=total_receivers,
    )
    result.metrics.update(
        pgm_before=pgm_before,
        pgm_after=pgm_after,
        tcp_before=tcp_before,
        tcp_after=tcp_after,
        change_ratio=change,
        acker_switches=session.acker_switches,
        rdata_sent=session.sender.rdata_sent,
        odata_sent=session.sender.odata_sent,
        stalls=session.sender.controller.stalls,
    )
    result.attach_telemetry(session, seed=seed)
    session.close()
    tcp.close()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.3).report())


if __name__ == "__main__":  # pragma: no cover
    main()
