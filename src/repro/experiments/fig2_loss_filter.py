"""EXP-F2 — Fig. 2: loss-rate computation at receivers.

The figure shows the output of the receiver loss filter, for three
values of the smoothing constant W, over two loss patterns:

* *congested*: a 60 kbit/s link carrying a single session — losses
  are sparse (queue-overflow only) and the overall loss rate is low;
* *lossy*: a link with 5 % random loss, modelling an overloaded link
  with very high statistical multiplexing.

We run each scenario once, capture the receiver's raw binary loss
signal through the ``sample_observer`` hook, then replay the same
pattern through filters with the three W values — exactly how the
figure overlays the three responses on one pattern.  The y axis of the
paper is the filter output times 2^16, i.e. our fixed-point value.
"""

from __future__ import annotations

from ..core.loss_filter import LossRateFilter
from ..pgm import create_session
from ..simulator import LinkSpec, Network
from .common import ExperimentResult

#: the W values plotted in Fig. 2 (the paper's own is 65000).
FILTER_WS = (64000, 65000, 65280)

CONGESTED = LinkSpec(rate_bps=60_000, delay=0.050, queue_slots=8)
LOSSY_5PCT = LinkSpec(rate_bps=2_000_000, delay=0.230, queue_bytes=30_000, loss_rate=0.05)


def _capture_pattern(spec: LinkSpec, duration: float, seed: int,
                     payload_size: int) -> list[bool]:
    """Run one single-receiver session over ``spec``; return the
    receiver's binary loss signal (True = lost slot)."""
    net = Network(seed=seed)
    net.add_host("src")
    net.add_router("R0")
    net.add_host("rx")
    net.duplex_link("src", "R0", LinkSpec(rate_bps=100_000_000, delay=0.0005, queue_slots=1000))
    net.duplex_link("R0", "rx", spec)
    net.build_routes()
    session = create_session(net, "src", ["rx"], payload_size=payload_size)
    pattern: list[bool] = []
    session.receivers[0].cc.sample_observer = lambda seq, lost: pattern.append(lost)
    net.run(until=duration)
    session.close()
    return pattern


def replay_filters(pattern: list[bool], ws: tuple[int, ...] = FILTER_WS) -> dict[int, list[int]]:
    """Filter one loss pattern with each W; returns fixed-point series."""
    series: dict[int, list[int]] = {}
    for w in ws:
        filt = LossRateFilter(w)
        series[w] = [filt.update(lost) for lost in pattern]
    return series


def run(scale: float = 1.0, seed: int = 42) -> ExperimentResult:
    """Run both Fig. 2 scenarios; returns per-(scenario, W) statistics."""
    result = ExperimentResult(
        name="fig2-loss-filter",
        params={"scale": scale, "seed": seed, "ws": FILTER_WS},
        expectation=(
            "congested link: sparse loss spikes decaying between events; "
            "5% lossy link: filter output fluctuates around 0.05*2^16≈3277 "
            "(the 2000–6000 band of the figure); smaller W = noisier output"
        ),
    )
    scenarios = {
        # Small payload on the slow link so enough packets flow.
        "congested-60k": (_capture_pattern(CONGESTED, 400.0 * scale, seed, 256), None),
        "lossy-5pct": (_capture_pattern(LOSSY_5PCT, 120.0 * scale, seed + 1, 1400), 0.05),
    }
    for scenario, (pattern, nominal) in scenarios.items():
        losses = sum(pattern)
        series = replay_filters(pattern)
        for w, values in series.items():
            # Discard the filter's warm-up (about 3 time constants).
            settle = min(len(values) // 2, 2000)
            steady = values[settle:] or values
            mean = sum(steady) / len(steady)
            result.add_row(
                scenario=scenario,
                w=w,
                samples=len(pattern),
                raw_loss=round(losses / max(len(pattern), 1), 4),
                mean_output=round(mean, 1),
                mean_loss_rate=round(mean / 65536, 4),
                peak_output=max(steady),
            )
            result.metrics[f"{scenario}:w{w}:mean"] = mean
            result.metrics[f"{scenario}:w{w}:std"] = _std(steady)
        result.metrics[f"{scenario}:raw_loss"] = losses / max(len(pattern), 1)
        if nominal is not None:
            result.metrics[f"{scenario}:nominal"] = nominal
    return result


def _std(values: list[int]) -> float:
    mean = sum(values) / len(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
