"""EXP-F6 — Fig. 6: shared bottleneck, receivers with spread RTTs.

A TCP session and a PGM session share one bottleneck; the PGM
receivers sit behind access links with widely different propagation
delays, some larger and some smaller than the TCP path's.  All losses
happen at the shared bottleneck.

Fig. 6 is a topology illustration with a qualitative discussion, not a
data plot.  The paper's points, which this experiment measures:

* the acker is one of the receivers "but not necessarily the one with
  the highest RTT" — with NE suppression the NAKs *reaching the
  source* come overwhelmingly from the short-RTT receivers, because
  per-segment they race to the NE first and suppress the rest;
* whichever receiver is elected, this "should not be seen as a source
  of unfairness": multiple TCPs with different RTTs share unevenly
  too, so the PGM session behaving like one of its members (slow or
  fast) is TCP-compatible on the shared path — neither flow starves.

We therefore report, per suppression mode: the origin distribution of
NAKs arriving at the source, acker occupancy, and the TCP/PGM rate
ratio compared against the RTT ratio a pure-TCP pair would exhibit.
"""

from __future__ import annotations

from ..analysis import throughput_bps, throughput_ratio
from ..core.sender_cc import CcConfig
from ..pgm import create_session, enable_network_elements
from ..simulator import LinkSpec, Network
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps

#: one-way extra delays of the PGM receivers (seconds); the TCP
#: receiver sits at 0.100 — two PGM RTTs below it, two above.
RECEIVER_DELAYS = (0.005, 0.050, 0.200, 0.400)
TCP_DELAY = 0.100

BOTTLENECK = LinkSpec(rate_bps=500_000, delay=0.020, queue_slots=30)
ACCESS = LinkSpec(rate_bps=100_000_000, delay=0.0005, queue_slots=1000)


def build(seed: int) -> Network:
    net = Network(seed=seed)
    net.add_host("src")
    net.add_host("ts")
    net.add_router("R0")
    net.add_router("R1")
    net.duplex_link("src", "R0", ACCESS)
    net.duplex_link("ts", "R0", ACCESS)
    net.duplex_link("R0", "R1", BOTTLENECK)
    for i, delay in enumerate(RECEIVER_DELAYS):
        name = f"pr{i}"
        net.add_host(name)
        net.duplex_link("R1", name, LinkSpec(100_000_000, delay, queue_slots=1000))
    net.add_host("tr")
    net.duplex_link("R1", "tr", LinkSpec(100_000_000, TCP_DELAY, queue_slots=1000))
    net.build_routes()
    return net


def run_case(suppression: bool, rx_loss_aware: bool, duration: float,
             seed: int, c: float = 0.75) -> dict:
    net = build(seed)
    elements = {}
    if suppression:
        elements = enable_network_elements(net, ["R0", "R1"], rx_loss_aware=rx_loss_aware)
    receivers = [f"pr{i}" for i in range(len(RECEIVER_DELAYS))]
    session = create_session(net, "src", receivers, cc=CcConfig(c=c), trace_name="pgm")
    tcp = create_tcp_flow(net, "ts", "tr", start_at=duration / 6, trace_name="tcp")
    net.run(until=duration)

    window = (duration / 3, duration)
    pgm_rate = throughput_bps(session.trace, *window)
    tcp_rate = throughput_bps(tcp.trace, *window)
    # Time-weighted acker occupancy over the competition window.
    occupancy = _acker_occupancy(
        session.sender.controller.election.switches, window[0], window[1]
    )
    dominant = max(occupancy, key=occupancy.get) if occupancy else None
    origins = dict(session.sender.nak_origins)
    total_naks = sum(origins.values()) or 1
    # Share of source-reaching NAKs that came from the two short-RTT
    # receivers (pr0, pr1) — the quantity suppression skews.
    short_rtt_share = (origins.get("pr0", 0) + origins.get("pr1", 0)) / total_naks
    out = {
        "pgm_rate": pgm_rate,
        "tcp_rate": tcp_rate,
        "ratio": throughput_ratio(pgm_rate, tcp_rate),
        "dominant_acker": dominant,
        "dominant_delay": (
            RECEIVER_DELAYS[int(dominant[2:])] if dominant else None
        ),
        "occupancy": occupancy,
        "switches": session.acker_switches,
        "naks_at_source": session.sender.naks_received,
        "nak_origins": origins,
        "short_rtt_nak_share": short_rtt_share,
        "ne_naks_suppressed": sum(ne.naks_suppressed for ne in elements.values()),
        "ne_naks_forwarded": sum(ne.naks_forwarded for ne in elements.values()),
    }
    session.close()
    tcp.close()
    return out


def _acker_occupancy(switches, t0: float, t1: float) -> dict[str, float]:
    """Seconds each receiver spent as acker within [t0, t1]."""
    occupancy: dict[str, float] = {}
    current = None
    last = t0
    for s in switches:
        if s.time >= t1:
            break
        if current is not None and s.time > t0:
            occupancy[current] = occupancy.get(current, 0.0) + (max(s.time, t0) - last)
        current = s.new
        last = max(s.time, t0)
    if current is not None:
        occupancy[current] = occupancy.get(current, 0.0) + (t1 - last)
    return occupancy


def run(scale: float = 1.0, seed: int = 13) -> ExperimentResult:
    duration = 240.0 * scale
    result = ExperimentResult(
        name="fig6-heterogeneous-rtt",
        params={"scale": scale, "seed": seed,
                "receiver_delays": RECEIVER_DELAYS, "tcp_delay": TCP_DELAY},
        expectation=(
            "the acker is one of the receivers but not necessarily the "
            "highest-RTT one; with NE suppression the reports reaching "
            "the source come mostly from short-RTT receivers; TCP is "
            "not starved either way (with different RTTs there is no "
            "single TCP-fair rate — the PGM/TCP ratio stays within the "
            "unfairness multiple TCPs with those RTTs would show)"
        ),
    )
    for suppression, aware, label in (
        (False, False, "no-NE"),
        (True, False, "NE-suppression"),
        (True, True, "NE-rx-loss-aware"),
    ):
        case = run_case(suppression, aware, duration, seed)
        result.add_row(
            case=label,
            pgm_kbps=kbps(case["pgm_rate"]),
            tcp_kbps=kbps(case["tcp_rate"]),
            ratio=round(case["ratio"], 2),
            dominant_acker=case["dominant_acker"],
            acker_delay_ms=(
                round(case["dominant_delay"] * 1000) if case["dominant_delay"] else None
            ),
            short_rtt_nak_share=round(case["short_rtt_nak_share"], 2),
            naks_at_source=case["naks_at_source"],
        )
        for key, value in case.items():
            result.metrics[f"{label}:{key}"] = value
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
