"""EXP-DTZ — the drop-to-zero problem (§2.1, [23]) vs pgmcc (§4.5).

Single-rate schemes that aggregate loss reports improperly at the
source estimate a session loss far above what any individual receiver
sees, and their equation-driven rate collapses as the group grows.
pgmcc never computes loss at the source: receivers filter their own
loss, and the controller follows one representative.

This experiment puts three controllers on the same topology — N
receivers behind *independent* links with 1 % random loss (the Fig. 7
population) — and sweeps N:

* ``eq-naive``: equation-based sender counting NAKs per packet sent
  (session loss ≈ N·p → rate ∝ 1/√N: drop-to-zero);
* ``eq-max``: the same sender using the worst receiver-filtered
  report (group-size independent);
* ``pgmcc``: the paper's scheme.

Expected shape: the naive controller's rate falls roughly as 1/√N
while the other two stay flat at the single-receiver TCP-fair rate.
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..baselines import EquationRateSender
from ..pgm import create_session
from ..pgm.receiver import PgmReceiver
from .common import ExperimentResult, kbps
from .fig7_uncorrelated_loss import build

#: RTT of the leaf path (2 × 230 ms) for the equation controllers.
PATH_RTT = 0.46


def _run_equation(n_receivers: int, aggregation: str, duration: float,
                  seed: int) -> float:
    net = build(n_receivers, seed)
    group = "mc:dtz"
    members = [f"r{i}" for i in range(n_receivers)]
    net.set_group(group, "src", members)
    sender = EquationRateSender(
        net.host("src"), group, tsi=900, aggregation=aggregation,
        rtt_estimate=PATH_RTT,
    )
    receivers = [
        PgmReceiver(net.host(m), group, 900, "src", reliable=False,
                    rng=net.rng.stream(f"dtz:{m}"))
        for m in members
    ]
    net.sim.schedule(0.0, sender.start)
    net.run(until=duration)
    rate = throughput_bps(sender.trace, duration / 2, duration)
    sender.close()
    for rx in receivers:
        rx.close()
    return rate


def _run_pgmcc(n_receivers: int, duration: float, seed: int) -> float:
    net = build(n_receivers, seed)
    session = create_session(
        net, "src", [f"r{i}" for i in range(n_receivers)], trace_name="pgm"
    )
    net.run(until=duration)
    rate = throughput_bps(session.trace, duration / 2, duration)
    session.close()
    return rate


def run(
    scale: float = 1.0,
    seed: int = 67,
    group_sizes: tuple[int, ...] = (1, 10, 50),
) -> ExperimentResult:
    duration = 120.0 * scale
    result = ExperimentResult(
        name="drop-to-zero",
        params={"scale": scale, "seed": seed, "group_sizes": group_sizes},
        expectation=(
            "naive NAK-count aggregation collapses roughly as 1/sqrt(N) "
            "with uncorrelated losses (the [23] drop-to-zero problem); "
            "worst-report aggregation and pgmcc hold the single-receiver "
            "TCP-fair rate regardless of group size"
        ),
    )
    schemes = {
        "eq-naive": lambda n, s: _run_equation(n, "nak-count", duration, s),
        "eq-max": lambda n, s: _run_equation(n, "max-report", duration, s),
        "pgmcc": lambda n, s: _run_pgmcc(n, duration, s),
    }
    rates: dict[str, dict[int, float]] = {name: {} for name in schemes}
    for name, runner in schemes.items():
        for i, n in enumerate(group_sizes):
            rates[name][n] = runner(n, seed + i)
    for n in group_sizes:
        result.add_row(
            receivers=n,
            **{f"{name}_kbps": kbps(rates[name][n]) for name in schemes},
        )
    smallest, largest = group_sizes[0], group_sizes[-1]
    for name in schemes:
        base = rates[name][smallest]
        collapsed = rates[name][largest]
        result.metrics[f"{name}:rate@{smallest}"] = base
        result.metrics[f"{name}:rate@{largest}"] = collapsed
        result.metrics[f"{name}:collapse"] = base / max(collapsed, 1.0)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.5, group_sizes=(1, 10, 40)).report())


if __name__ == "__main__":  # pragma: no cover
    main()
