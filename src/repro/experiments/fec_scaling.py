"""EXP-FEC — scaling Fig. 7 with FEC repair (§4.5's closing caveat).

The paper: "Much larger scale tests ... cannot be run with simple
retransmission-based repairs, or the repair traffic would quickly
dominate the actual data traffic on the link from the source."  Its
references (RMDP [20], parity-based recovery [13], digital fountain
[1]) repair with FEC instead.

This experiment runs the Fig. 7 population (many receivers behind
independent 1 % loss links) two ways:

* **RDATA**: reliable mode, retransmission repairs — measuring the
  repair share of source traffic;
* **FEC r/k**: unreliable mode with a systematic (k, k+r) block code —
  zero repair traffic; measuring the residual (unrecoverable) block
  loss across all receivers for r = 0, 1, 2.

Expected shape: the RDATA repair share grows with the receiver count,
while modest FEC redundancy (r=2 over k=16, 11 % overhead) drives the
residual loss to ~zero with *constant* source-side traffic.
"""

from __future__ import annotations

from ..analysis import throughput_bps
from ..pgm import create_session
from ..pgm.fec import FecAssembler, FecSource, attach_fec_receiver
from .common import ExperimentResult, kbps
from .fig7_uncorrelated_loss import build

K = 16


def run(
    scale: float = 1.0,
    seed: int = 61,
    n_receivers: int = 60,
    redundancies: tuple[int, ...] = (0, 1, 2),
) -> ExperimentResult:
    duration = 240.0 * scale
    result = ExperimentResult(
        name="fec-scaling",
        params={"scale": scale, "seed": seed, "n_receivers": n_receivers, "k": K},
        expectation=(
            "retransmission repair grows with the receiver count; FEC "
            "with ~11% parity (r=2, k=16) removes repair traffic "
            "entirely and leaves near-zero residual loss at every "
            "receiver"
        ),
    )

    # Baseline: retransmission-based repair (Fig. 7 style).
    net = build(n_receivers, seed)
    session = create_session(
        net, "src", [f"r{i}" for i in range(n_receivers)], trace_name="rdata"
    )
    net.run(until=duration)
    odata, rdata = session.sender.odata_sent, session.sender.rdata_sent
    goodput = throughput_bps(session.trace, duration / 4, duration)
    result.add_row(
        mode="RDATA", overhead=round(rdata / max(odata, 1), 3),
        residual_loss=0.0, goodput_kbps=kbps(goodput),
        source_packets=odata + rdata,
    )
    result.metrics["rdata:repair_share"] = rdata / max(odata, 1)
    result.metrics["rdata:goodput"] = goodput
    session.close()

    # FEC variants: no repair traffic at all.
    for r in redundancies:
        net = build(n_receivers, seed + 1 + r)
        source = FecSource(k=K, redundancy=r)
        session = create_session(
            net, "src", [f"r{i}" for i in range(n_receivers)],
            reliable=False, source=source, trace_name=f"fec-r{r}",
        )
        assemblers = []
        for rx in session.receivers:
            assembler = FecAssembler()
            attach_fec_receiver(rx, assembler)
            assemblers.append(assembler)
        net.run(until=duration)
        residuals = [a.residual_block_loss() for a in assemblers]
        worst = max(residuals)
        mean = sum(residuals) / len(residuals)
        goodput = throughput_bps(session.trace, duration / 4, duration)
        goodput_data = goodput * K / (K + r)
        result.add_row(
            mode=f"FEC r={r}", overhead=round(r / (K + r), 3),
            residual_loss=round(mean, 4), goodput_kbps=kbps(goodput_data),
            source_packets=session.sender.odata_sent,
        )
        result.metrics[f"fec{r}:mean_residual"] = mean
        result.metrics[f"fec{r}:worst_residual"] = worst
        result.metrics[f"fec{r}:rdata"] = session.sender.rdata_sent
        result.metrics[f"fec{r}:goodput_data"] = goodput_data
        session.close()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(scale=0.5, n_receivers=30).report())


if __name__ == "__main__":  # pragma: no cover
    main()
