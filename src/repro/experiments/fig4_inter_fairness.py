"""EXP-F4 — Fig. 4: inter-protocol fairness against TCP.

One pgmcc session with up to three receivers on the same subnet shares
a bottleneck with one TCP flow.  Receivers join at different times
(all before TCP starts); the TCP flow terminates before the end so the
pgmcc session's rate recovery is visible.  Both §4 bottleneck
configurations are run.  The paper used c = 1 here.

Expected shape (non-lossy): pgmcc takes the whole link, halves when
TCP starts, both proceed at about the same rate, and pgmcc regains the
link when TCP ends.  Co-located extra receivers cause acker switches
but no throughput change.  Lossy: both rates are loss-determined and
neither flow perturbs the other.
"""

from __future__ import annotations

from ..analysis import throughput_bps, throughput_ratio
from ..core.sender_cc import CcConfig
from ..pgm import add_receiver, create_session
from ..simulator import LOSSY, NON_LOSSY, LinkSpec, dumbbell
from ..tcp import create_tcp_flow
from .common import ExperimentResult, kbps


def run_case(
    spec: LinkSpec,
    label: str,
    duration: float = 240.0,
    tcp_start: float = 80.0,
    tcp_stop: float = 200.0,
    c: float = 1.0,
    dupack_threshold: int = 3,
    ssthresh: int = 6,
    n_receivers: int = 3,
    delayed_acks: bool = False,
    seed: int = 11,
) -> dict:
    net = dumbbell(2, n_receivers + 1, spec, seed=seed)
    cc = CcConfig(c=c, dupack_threshold=dupack_threshold, ssthresh=ssthresh)
    session = create_session(net, "h0", ["r0"], cc=cc, trace_name="pgm")
    # Stagger the extra co-located receivers (paper: "started at
    # different times (but before the TCP session)").
    for i in range(1, n_receivers):
        add_receiver(net, session, f"r{i}", at=tcp_start * i / (2.0 * n_receivers))
    tcp = create_tcp_flow(
        net, "h1", f"r{n_receivers}", start_at=tcp_start, stop_at=tcp_stop,
        delayed_acks=delayed_acks, trace_name="tcp",
    )
    net.run(until=duration)

    settle = (tcp_stop - tcp_start) / 6.0
    window = (tcp_start + settle, tcp_stop)
    pgm_alone = throughput_bps(session.trace, tcp_start / 2, tcp_start)
    pgm_shared = throughput_bps(session.trace, *window)
    tcp_shared = throughput_bps(tcp.trace, *window)
    after_window = (min(tcp_stop + settle, duration - 1), duration)
    pgm_after = throughput_bps(session.trace, *after_window)
    out = {
        "label": label,
        "pgm_alone": pgm_alone,
        "pgm_shared": pgm_shared,
        "tcp_shared": tcp_shared,
        "pgm_after": pgm_after,
        "ratio": throughput_ratio(pgm_shared, tcp_shared),
        "acker_switches": session.acker_switches,
        "tcp_timeouts": tcp.sender.timeouts,
        "pgm_stalls": session.sender.controller.stalls,
    }
    session.close()
    tcp.close()
    return out


def run(scale: float = 1.0, seed: int = 11, c: float = 1.0,
        delayed_acks: bool = False) -> ExperimentResult:
    duration = 240.0 * scale
    tcp_start = 80.0 * scale
    tcp_stop = 200.0 * scale
    result = ExperimentResult(
        name="fig4-inter-fairness",
        params={"scale": scale, "seed": seed, "c": c, "delayed_acks": delayed_acks},
        expectation=(
            "good sharing between TCP and pgmcc in all configurations, "
            "no starvation either way; multiple co-located receivers "
            "cause acker switches but do not change the data rate; "
            "pgmcc regains the link once TCP terminates (non-lossy)"
        ),
    )
    for spec, label in ((NON_LOSSY, "non-lossy"), (LOSSY, "lossy")):
        case = run_case(
            spec, label, duration, tcp_start, tcp_stop, c=c,
            delayed_acks=delayed_acks, seed=seed,
        )
        result.add_row(
            case=label,
            pgm_alone_kbps=kbps(case["pgm_alone"]),
            pgm_shared_kbps=kbps(case["pgm_shared"]),
            tcp_shared_kbps=kbps(case["tcp_shared"]),
            pgm_after_kbps=kbps(case["pgm_after"]),
            ratio=round(case["ratio"], 2),
            acker_switches=case["acker_switches"],
        )
        for key, value in case.items():
            if key != "label":
                result.metrics[f"{label}:{key}"] = value
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
