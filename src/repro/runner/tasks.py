"""Task model: spawn-safe descriptors, outcomes, and the worker entry.

A task is an :class:`~repro.experiments.common.ExperimentSpec` plus the
sweep-wide scale.  Workers never receive callables — only the module
and function *names* — so descriptors survive any multiprocessing
start method (``fork`` and ``spawn`` alike).
"""

from __future__ import annotations

import importlib
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..experiments.common import ExperimentResult


def error_info(exc: BaseException) -> dict[str, str]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


@dataclass
class TaskOutcome:
    """Final state of one task after retries and cache lookups."""

    id: str
    status: str  #: ``"ok"`` or ``"failed"``
    result: ExperimentResult | None = None
    error: dict[str, str] | None = None
    attempts: int = 0
    wall_s: float = 0.0
    worker: int | None = None
    cache_hit: bool = False
    result_digest: str | None = None
    events: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Manifest entry.  Deterministic content (result, digest) and
        telemetry (wall time, worker, attempts) side by side; the
        manifest's ``results_digest`` covers only the former."""
        return {
            "id": self.id,
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 3),
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "result_digest": self.result_digest,
            "error": self.error,
            "result": self.result.to_dict() if self.result is not None else None,
        }


def child_entry(conn, module: str, func: str, kwargs: dict[str, Any],
                extra_sys_path: list[str]) -> None:
    """Worker-process entry: import, run, ship the serialized result.

    Any exception (including SystemExit from the experiment) is caught
    and reported over the pipe; a worker that dies before sending is
    detected by the parent via the exit code.
    """
    try:
        for entry in reversed(extra_sys_path):
            if entry not in sys.path:
                sys.path.insert(0, entry)
        fn = getattr(importlib.import_module(module), func)
        result = fn(**kwargs)
        if not isinstance(result, ExperimentResult):
            raise TypeError(
                f"{module}.{func} returned {type(result).__name__}, "
                "expected ExperimentResult"
            )
        conn.send(("ok", result.to_dict()))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        try:
            conn.send(("error", error_info(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
