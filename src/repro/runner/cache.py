"""Content-addressed on-disk store for experiment results.

A cache entry is keyed by a digest of *what would run*: the experiment
callable's identity, its full keyword arguments (including ``scale``
and ``seed``), and a fingerprint of the ``repro`` source tree.  Any
edit to the package (outside ``repro.runner`` itself, which cannot
change experiment outcomes) produces a new fingerprint, so stale
results are unreachable rather than invalidated — re-runs after
unrelated edits (docs, tests, benches) are near-instant cache hits.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..experiments.common import ExperimentResult, canonical_json

#: bump when the cache entry layout or key derivation changes
#: (v2: the experiment's declared parameter schema joined the key, so
#: a schema change invalidates stale cached results)
CACHE_SCHEMA = "pgmcc.result-cache/v2"

DEFAULT_CACHE_DIR = Path("results") / "cache"

#: subpackages that cannot affect experiment outcomes (the orchestrator
#: machinery itself) and are excluded from the source fingerprint
FINGERPRINT_EXCLUDE = ("runner",)

_FINGERPRINTS: dict[tuple, str] = {}


def _source_files(roots: Iterable[os.PathLike | str],
                  exclude: tuple[str, ...]) -> list[tuple[Path, Path]]:
    files: list[tuple[Path, Path]] = []
    for root in sorted(Path(r).resolve() for r in set(map(str, roots))):
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if rel.parts and rel.parts[0] in exclude:
                continue
            files.append((root, path))
    return files


def source_fingerprint(roots: Iterable[os.PathLike | str] | None = None,
                       exclude: tuple[str, ...] = FINGERPRINT_EXCLUDE) -> str:
    """Digest of every ``*.py`` under ``roots`` (default: the installed
    ``repro`` package).

    Content hashing is memoised behind a cheap stat signature (path,
    size, mtime), so repeated calls in one process are ~free while an
    edit to any source file is still picked up immediately.
    """
    if roots is None:
        import repro

        roots = (Path(repro.__file__).parent,)
    files = _source_files(roots, exclude)
    signature = tuple(
        (str(path), (st := path.stat()).st_size, st.st_mtime_ns)
        for _, path in files
    )
    cached = _FINGERPRINTS.get(signature)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for root, path in files:
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(hashlib.sha256(path.read_bytes()).digest())
        h.update(b"\0")
    digest = h.hexdigest()
    _FINGERPRINTS[signature] = digest
    return digest


#: sentinel: "resolve the parameter schema from the experiment registry"
_REGISTRY_SCHEMA = object()


def _schema_for(experiment: str) -> Any:
    """Declared parameter schema for a ``module:func`` target (None
    when unregistered/undeclared).  Kept here so every cache-key
    producer — the orchestrator, ``fetch_or_run``, the sweep DSL —
    derives the identical key for the identical target."""
    from ..experiments.registry import schema_for_target

    return schema_for_target(experiment)


def task_digest(experiment: str, kwargs: dict[str, Any], source: str,
                param_schema: Any = _REGISTRY_SCHEMA) -> str:
    """Cache key: experiment identity + full kwargs + declared
    parameter schema + source fingerprint.

    ``param_schema`` defaults to a registry lookup by the
    ``module:func`` target; pass an explicit schema doc (or None) to
    pin it.  A schema edit therefore changes the key and makes stale
    cached results unreachable even if the source fingerprint is
    excluded for that path.
    """
    if param_schema is _REGISTRY_SCHEMA:
        param_schema = _schema_for(experiment)
    payload = {
        "schema": CACHE_SCHEMA,
        "experiment": experiment,
        "kwargs": kwargs,
        "param_schema": param_schema,
        "source": source,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def callable_id(fn: Callable) -> str:
    """Stable identity of an experiment callable (``module:qualname``)."""
    return f"{fn.__module__}:{fn.__qualname__}"


class ResultCache:
    """Content-addressed store: ``<root>/<d[:2]>/<digest>.json``."""

    def __init__(self, root: os.PathLike | str = DEFAULT_CACHE_DIR, *,
                 source_roots: Iterable[os.PathLike | str] | None = None,
                 exclude: tuple[str, ...] = FINGERPRINT_EXCLUDE):
        self.root = Path(root)
        self._source_roots = tuple(source_roots) if source_roots else None
        self._exclude = exclude

    def source_digest(self) -> str:
        return source_fingerprint(self._source_roots, self._exclude)

    def digest_for(self, experiment: str, kwargs: dict[str, Any],
                   param_schema: Any = _REGISTRY_SCHEMA) -> str:
        return task_digest(experiment, kwargs, self.source_digest(),
                           param_schema)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> ExperimentResult | None:
        path = self._path(digest)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if data.get("schema") != CACHE_SCHEMA:
            return None
        return ExperimentResult.from_dict(data["result"])

    def put(self, digest: str, result: ExperimentResult,
            meta: dict[str, Any] | None = None) -> Path:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "saved_at": time.time(),
            "meta": meta or {},
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        return path

    def fetch_or_run(self, fn: Callable[..., ExperimentResult],
                     kwargs: dict[str, Any]) -> tuple[ExperimentResult, bool]:
        """Return ``(result, cache_hit)`` for ``fn(**kwargs)``.

        The key is shared with the orchestrator's sweep tasks: a bench
        and a ``repro.runner`` run of the same experiment at the same
        parameters reuse each other's results.
        """
        digest = self.digest_for(callable_id(fn), kwargs)
        cached = self.get(digest)
        if cached is not None:
            return cached, True
        result = fn(**kwargs)
        self.put(digest, result, meta={"experiment": callable_id(fn)})
        return result, False
