"""`repro.runner` — parallel experiment orchestration.

The evaluation pipeline (the experiment registry in
``repro.experiments.run_all`` plus the pytest benches) is a set of
independent, deterministic simulations — exactly the shape that shards
across cores.  This package provides:

* :class:`Orchestrator` — runs :class:`ExperimentSpec` tasks across a
  ``multiprocessing`` worker pool with per-task timeouts, one retry
  with backoff, and failure isolation (a dead task never kills the
  sweep);
* :class:`ResultCache` — a content-addressed on-disk store keyed by
  (experiment, kwargs, source fingerprint), shared between sweep runs
  and the bench suite;
* run manifests (``pgmcc.run-manifest/v1``) and perf-trajectory
  artifacts (``pgmcc.bench-results/v1``);
* the ``python -m repro.runner`` CLI.

See ``docs/API.md`` for the task model, cache key, and schemas.
"""

from .bench import (BENCH_SCHEMA, bench_results_from_manifest,
                    measure_sim_events_per_sec,
                    session_metrics_from_manifest)
from .cache import (CACHE_SCHEMA, DEFAULT_CACHE_DIR, ResultCache,
                    callable_id, source_fingerprint, task_digest)
from .events import RunnerEvent, event_printer
from .manifest import (MANIFEST_SCHEMA, build_manifest, load_manifest,
                       results_digest, save_manifest)
from .orchestrator import Orchestrator, auto_jobs
from .tasks import TaskOutcome, child_entry, error_info

__all__ = [
    "BENCH_SCHEMA",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "MANIFEST_SCHEMA",
    "Orchestrator",
    "ResultCache",
    "RunnerEvent",
    "TaskOutcome",
    "auto_jobs",
    "bench_results_from_manifest",
    "build_manifest",
    "callable_id",
    "child_entry",
    "error_info",
    "event_printer",
    "load_manifest",
    "measure_sim_events_per_sec",
    "results_digest",
    "save_manifest",
    "session_metrics_from_manifest",
    "source_fingerprint",
    "task_digest",
]
