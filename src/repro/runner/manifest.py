"""Run manifests: the machine-readable record of one sweep.

The manifest separates *what was computed* from *how long it took*:
``results_digest`` covers only (experiment id, result digest) pairs in
id order, so two runs of the same registry at the same scale produce
byte-identical digests regardless of ``-j``, worker assignment, cache
hits, or wall time.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any

from ..experiments.common import canonical_json
from .tasks import TaskOutcome

#: v2: additive — an optional top-level ``sweep`` block (the declarative
#: spec a sweep run expanded from, plus each task's axis assignment);
#: every v1 key is unchanged and non-sweep manifests omit the block.
MANIFEST_SCHEMA = "pgmcc.run-manifest/v2"


def results_digest(outcomes: list[TaskOutcome]) -> str:
    """Digest of the deterministic content of a sweep."""
    pairs = sorted((o.id, o.result_digest) for o in outcomes)
    return hashlib.sha256(canonical_json(pairs).encode()).hexdigest()


def build_manifest(outcomes: list[TaskOutcome], *, run_id: str, scale: float,
                   jobs: int, cache_enabled: bool, source_digest: str,
                   wall_s: float,
                   sweep: dict[str, Any] | None = None) -> dict[str, Any]:
    ok = sum(1 for o in outcomes if o.status == "ok")
    failed = sum(1 for o in outcomes if o.status == "failed")
    hits = sum(1 for o in outcomes if o.cache_hit)
    serial = sum(o.wall_s for o in outcomes)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": scale,
        "jobs": jobs,
        "cache_enabled": cache_enabled,
        "source_digest": source_digest,
        "tasks": [o.to_dict() for o in outcomes],
        "totals": {
            "tasks": len(outcomes),
            "ok": ok,
            "failed": failed,
            "cache_hits": hits,
            "wall_s": round(wall_s, 3),
            #: sum of per-task wall times = the sequential cost
            "serial_wall_s": round(serial, 3),
            "speedup": round(serial / wall_s, 2) if wall_s > 0 else None,
        },
        "results_digest": results_digest(outcomes),
    }
    if sweep is not None:
        manifest["sweep"] = sweep
    return manifest


def save_manifest(manifest: dict[str, Any], path: os.PathLike | str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: os.PathLike | str) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
