"""Simulator perf-regression gate.

Compares a freshly measured event-loop throughput (the
``measure_sim_events_per_sec`` workload, identical to
``benchmarks/bench_simulator_perf.py::test_bench_event_loop``) against
the committed baseline in ``results/BENCH_RESULTS.json``:

* **fail** (exit 1) when throughput regressed more than
  ``--regression`` (default 20 %) below the baseline;
* **warn** (exit 0) when throughput is below the hot-path overhaul's
  speedup target — ``TARGET_SPEEDUP`` x the pre-overhaul engine
  (:data:`REFERENCE_PR5_EVENTS_PER_SEC`) — since shared CI runners
  jitter too much to make the absolute target a hard gate;
* **ok** otherwise.

Run it *before* anything rewrites ``BENCH_RESULTS.json`` (the CI sweep
step regenerates that file), so the comparison is against the
committed trajectory point::

    python -m repro.runner.perf_gate --baseline results/BENCH_RESULTS.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from .bench import measure_sim_events_per_sec

#: Engine throughput recorded by PR 5 (the last pre-overhaul seed),
#: from results/BENCH_RESULTS.json at that commit.  The hot-path
#: overhaul's acceptance criterion is TARGET_SPEEDUP x this value.
REFERENCE_PR5_EVENTS_PER_SEC = 890_717.6

#: Required speedup of the overhauled engine over the PR-5 reference.
TARGET_SPEEDUP = 3.0


def evaluate(measured: float, baseline: Optional[float],
             regression_threshold: float = 0.20,
             reference: float = REFERENCE_PR5_EVENTS_PER_SEC,
             target_speedup: float = TARGET_SPEEDUP) -> dict[str, Any]:
    """Pure verdict on a measurement; the CLI just prints this.

    ``baseline`` is the committed ``sim_events_per_sec`` (None when the
    baseline artifact predates the field — then only the soft target
    applies).  Returns ``status`` ("ok" / "warn" / "fail"), the
    thresholds used and human-readable ``reasons``.
    """
    if regression_threshold <= 0 or regression_threshold >= 1:
        raise ValueError("regression_threshold must be in (0, 1)")
    floor = None if baseline is None else baseline * (1.0 - regression_threshold)
    target = reference * target_speedup
    reasons = []
    status = "ok"
    if floor is not None and measured < floor:
        status = "fail"
        reasons.append(
            f"throughput {measured:,.0f} ev/s regressed more than "
            f"{regression_threshold:.0%} below the baseline "
            f"{baseline:,.0f} ev/s (floor {floor:,.0f})"
        )
    elif measured < target:
        status = "warn"
        reasons.append(
            f"throughput {measured:,.0f} ev/s is below the overhaul "
            f"target of {target_speedup:.0f}x the PR-5 engine "
            f"({target:,.0f} ev/s) — not fatal on shared runners, but "
            f"worth a look"
        )
    return {
        "status": status,
        "measured": measured,
        "baseline": baseline,
        "floor": floor,
        "target": target,
        "reasons": reasons,
    }


def load_baseline(path: str) -> Optional[float]:
    """``sim_events_per_sec`` from a bench-results artifact (None when
    absent or null — e.g. a sweep ran with the probe disabled)."""
    with open(path) as fh:
        doc = json.load(fh)
    value = doc.get("sim_events_per_sec")
    return float(value) if value is not None else None


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.perf_gate",
        description="fail CI when simulator throughput regresses",
    )
    parser.add_argument("--baseline", default="results/BENCH_RESULTS.json",
                        help="committed bench-results artifact to gate against")
    parser.add_argument("--regression", type=float, default=0.20,
                        help="fatal fractional drop vs baseline (default 0.20)")
    parser.add_argument("--chain", type=int, default=10_000,
                        help="event-chain length per repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats (default 3)")
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"perf-gate: no baseline at {args.baseline}; "
              "soft target only")
        baseline = None

    measured = measure_sim_events_per_sec(chain=args.chain,
                                          repeats=args.repeats)
    verdict = evaluate(measured, baseline,
                       regression_threshold=args.regression)
    print(f"perf-gate: measured {measured:,.0f} ev/s"
          + (f", baseline {baseline:,.0f} ev/s" if baseline else "")
          + f", target {verdict['target']:,.0f} ev/s"
          + f" -> {verdict['status'].upper()}")
    for reason in verdict["reasons"]:
        print(f"perf-gate: {reason}")
    return 1 if verdict["status"] == "fail" else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
