"""Simulator perf-regression gate.

Compares a freshly measured event-loop throughput (the
``measure_sim_events_per_sec`` workload, identical to
``benchmarks/bench_simulator_perf.py::test_bench_event_loop``) against
the committed baseline in ``results/BENCH_RESULTS.json``:

* **fail** (exit 1) when throughput regressed more than
  ``--regression`` (default 20 %) below the baseline;
* **warn** (exit 0) when throughput is below the hot-path overhaul's
  speedup target — ``TARGET_SPEEDUP`` x the pre-overhaul engine
  (:data:`REFERENCE_PR5_EVENTS_PER_SEC`) — since shared CI runners
  jitter too much to make the absolute target a hard gate;
* **ok** otherwise.

Run it *before* anything rewrites ``BENCH_RESULTS.json`` (the CI sweep
step regenerates that file), so the comparison is against the
committed trajectory point::

    python -m repro.runner.perf_gate --baseline results/BENCH_RESULTS.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from .bench import measure_sim_events_per_sec

#: Engine throughput recorded by PR 5 (the last pre-overhaul seed),
#: from results/BENCH_RESULTS.json at that commit.  The hot-path
#: overhaul's acceptance criterion is TARGET_SPEEDUP x this value.
REFERENCE_PR5_EVENTS_PER_SEC = 890_717.6

#: Required speedup of the overhauled engine over the PR-5 reference.
TARGET_SPEEDUP = 3.0


def evaluate(measured: float, baseline: Optional[float],
             regression_threshold: float = 0.20,
             reference: float = REFERENCE_PR5_EVENTS_PER_SEC,
             target_speedup: float = TARGET_SPEEDUP) -> dict[str, Any]:
    """Pure verdict on a measurement; the CLI just prints this.

    ``baseline`` is the committed ``sim_events_per_sec`` (None when the
    baseline artifact predates the field — then only the soft target
    applies).  Returns ``status`` ("ok" / "warn" / "fail"), the
    thresholds used and human-readable ``reasons``.
    """
    if regression_threshold <= 0 or regression_threshold >= 1:
        raise ValueError("regression_threshold must be in (0, 1)")
    floor = None if baseline is None else baseline * (1.0 - regression_threshold)
    target = reference * target_speedup
    reasons = []
    status = "ok"
    if floor is not None and measured < floor:
        status = "fail"
        reasons.append(
            f"throughput {measured:,.0f} ev/s regressed more than "
            f"{regression_threshold:.0%} below the baseline "
            f"{baseline:,.0f} ev/s (floor {floor:,.0f})"
        )
    elif measured < target:
        status = "warn"
        reasons.append(
            f"throughput {measured:,.0f} ev/s is below the overhaul "
            f"target of {target_speedup:.0f}x the PR-5 engine "
            f"({target:,.0f} ev/s) — not fatal on shared runners, but "
            f"worth a look"
        )
    return {
        "status": status,
        "measured": measured,
        "baseline": baseline,
        "floor": floor,
        "target": target,
        "reasons": reasons,
    }


def evaluate_series(
    measured: dict[str, dict[str, Any]],
    baseline: dict[str, dict[str, Any]],
    regression_threshold: float = 0.50,
    key: str = "receivers_per_sec",
) -> dict[str, Any]:
    """Gate a per-cell metric series (the hybrid scale ladder).

    A series entry present in ``measured`` but missing from
    ``baseline`` — the first run of a new probe — is a **seed
    baseline**, not a regression: it gets status ``"seed"`` and never
    fails the gate.  Only cells present in *both* are compared, and a
    cell regresses when ``measured < baseline * (1 - threshold)``.
    The default threshold is loose (50 %) because scale cells run real
    protocol workloads on shared runners, not a microbenchmark.
    """
    if regression_threshold <= 0 or regression_threshold >= 1:
        raise ValueError("regression_threshold must be in (0, 1)")
    cells: dict[str, dict[str, Any]] = {}
    status = "ok"
    reasons = []
    for cell, metrics in measured.items():
        value = metrics.get(key)
        base_entry = baseline.get(cell, {})
        base = base_entry.get(key)
        if value is None:
            continue
        if base is None:
            cells[cell] = {"status": "seed", "measured": value,
                           "baseline": None}
            continue
        floor = base * (1.0 - regression_threshold)
        if value < floor:
            cells[cell] = {"status": "fail", "measured": value,
                           "baseline": base, "floor": floor}
            status = "fail"
            reasons.append(
                f"scale cell {cell}: {key} {value:,.0f} regressed more "
                f"than {regression_threshold:.0%} below the baseline "
                f"{base:,.0f} (floor {floor:,.0f})"
            )
        else:
            cells[cell] = {"status": "ok", "measured": value,
                           "baseline": base, "floor": floor}
    seeded = sum(1 for c in cells.values() if c["status"] == "seed")
    return {"status": status, "cells": cells, "seeded": seeded,
            "reasons": reasons}


def load_baseline(path: str) -> Optional[float]:
    """``sim_events_per_sec`` from a bench-results artifact (None when
    absent or null — e.g. a sweep ran with the probe disabled)."""
    with open(path) as fh:
        doc = json.load(fh)
    value = doc.get("sim_events_per_sec")
    return float(value) if value is not None else None


def load_scale_baseline(path: str) -> dict[str, dict[str, Any]]:
    """``scale_metrics`` from a bench-results artifact.  An artifact
    that predates the field (or has no hybrid cells) yields ``{}`` —
    every measured cell then seeds the baseline instead of failing."""
    with open(path) as fh:
        doc = json.load(fh)
    series = doc.get("scale_metrics")
    return dict(series) if isinstance(series, dict) else {}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.perf_gate",
        description="fail CI when simulator throughput regresses",
    )
    parser.add_argument("--baseline", default="results/BENCH_RESULTS.json",
                        help="committed bench-results artifact to gate against")
    parser.add_argument("--regression", type=float, default=0.20,
                        help="fatal fractional drop vs baseline (default 0.20)")
    parser.add_argument("--chain", type=int, default=10_000,
                        help="event-chain length per repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats (default 3)")
    parser.add_argument("--measured", default=None,
                        help="freshly produced bench-results artifact; "
                             "its scale_metrics series is gated against "
                             "the baseline's (missing baseline cells "
                             "seed, they do not fail)")
    parser.add_argument("--scale-regression", type=float, default=0.50,
                        help="fatal fractional drop per scale cell "
                             "(default 0.50)")
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(f"perf-gate: no baseline at {args.baseline}; "
              "soft target only")
        baseline = None

    measured = measure_sim_events_per_sec(chain=args.chain,
                                          repeats=args.repeats)
    verdict = evaluate(measured, baseline,
                       regression_threshold=args.regression)
    print(f"perf-gate: measured {measured:,.0f} ev/s"
          + (f", baseline {baseline:,.0f} ev/s" if baseline else "")
          + f", target {verdict['target']:,.0f} ev/s"
          + f" -> {verdict['status'].upper()}")
    for reason in verdict["reasons"]:
        print(f"perf-gate: {reason}")

    series_failed = False
    if args.measured is not None:
        try:
            measured_series = load_scale_baseline(args.measured)
        except FileNotFoundError:
            print(f"perf-gate: no measured artifact at {args.measured}; "
                  "skipping scale-series gate")
            measured_series = {}
        try:
            baseline_series = load_scale_baseline(args.baseline)
        except FileNotFoundError:
            baseline_series = {}
        series = evaluate_series(measured_series, baseline_series,
                                 regression_threshold=args.scale_regression)
        for cell, info in series["cells"].items():
            tag = info["status"].upper()
            if info["status"] == "seed":
                tag = "SEED-BASELINE"
            print(f"perf-gate: scale cell {cell}: "
                  f"{info['measured']:,.0f} rx/s -> {tag}")
        for reason in series["reasons"]:
            print(f"perf-gate: {reason}")
        series_failed = series["status"] == "fail"

    return 1 if (verdict["status"] == "fail" or series_failed) else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
