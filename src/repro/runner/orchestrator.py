"""The experiment orchestrator: shard, cache, isolate, retry, report.

Tasks come from the experiment registry (``run_all.REGISTRY`` or any
list of :class:`ExperimentSpec`).  Each runs in its own worker process
(one process per attempt, so a crash or hang never poisons a pool
worker); results travel back over a pipe as plain dicts.  Failures are
isolated: a raising, crashing or hung task is retried with backoff and,
if it keeps failing, reported in the manifest while its siblings run to
completion.

``inline=True`` executes tasks in the calling process instead (no
timeout enforcement, but the same retry/outcome bookkeeping) — this is
what the sequential ``pgmcc-experiments`` CLI uses, and it keeps the
orchestrator usable where ``multiprocessing`` is unwelcome.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..experiments.common import ExperimentResult, ExperimentSpec
from .cache import ResultCache, callable_id, source_fingerprint
from .events import RunnerEvent, event_printer
from .manifest import build_manifest
from .tasks import TaskOutcome, child_entry, error_info

__all__ = ["Orchestrator", "auto_jobs"]


def auto_jobs() -> int:
    return os.cpu_count() or 1


@dataclass
class _Pending:
    index: int
    spec: ExperimentSpec
    kwargs: dict[str, Any]
    digest: str | None
    attempt: int = 1  #: attempt about to run (1-based)
    not_before: float = 0.0  #: monotonic time gate for retry backoff


@dataclass
class _Running:
    task: _Pending
    process: Any
    conn: Any
    worker: int
    started: float


class Orchestrator:
    """Run a list of :class:`ExperimentSpec` and produce a manifest."""

    def __init__(self, specs: Iterable[ExperimentSpec], *, scale: float = 1.0,
                 jobs: int = 1, cache: ResultCache | None = None,
                 timeout: float | None = None, retries: int = 1,
                 backoff: float = 0.5, inline: bool = False,
                 on_event: Callable[[RunnerEvent], None] | None = None,
                 on_outcome: Callable[[TaskOutcome], None] | None = None,
                 mp_context: Any = None,
                 extra_sys_path: Sequence[str] = ()):
        self.specs = list(specs)
        self.scale = scale
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.inline = inline
        self.on_event = on_event
        self.on_outcome = on_outcome
        self.extra_sys_path = list(extra_sys_path)
        self._ctx = mp_context or multiprocessing.get_context()
        self.outcomes: list[TaskOutcome] = []

    # -- telemetry ---------------------------------------------------

    def _emit(self, kind: str, task_id: str, **fields: Any) -> None:
        if self.on_event is not None:
            self.on_event(RunnerEvent(kind=kind, task_id=task_id, **fields))

    def _finish(self, slot: dict[int, TaskOutcome], index: int,
                outcome: TaskOutcome) -> None:
        slot[index] = outcome
        kind = "done" if outcome.status == "ok" else "failed"
        if outcome.cache_hit:
            kind = "cache-hit"
        self._emit(kind, outcome.id, worker=outcome.worker,
                   attempt=outcome.attempts, wall_s=outcome.wall_s,
                   message=(outcome.error or {}).get("type", ""))
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # -- public API --------------------------------------------------

    def run(self, run_id: str | None = None,
            sweep: dict[str, Any] | None = None) -> dict[str, Any]:
        """Execute every task; returns the run manifest (a dict).

        ``sweep`` is an optional manifest block describing the
        declarative spec this task list was expanded from (attached
        verbatim by ``repro.sweep``)."""
        started = time.perf_counter()
        by_index: dict[int, TaskOutcome] = {}
        todo: list[_Pending] = []

        # Validate every task against its declared parameter schema
        # *before* anything runs: a typo'd kwarg or out-of-range value
        # is a configuration error, reported as a clear TypeError /
        # ValueError up front rather than a traceback from mid-worker.
        for spec in self.specs:
            spec.validate_kwargs(spec.call_kwargs(self.scale))

        for index, spec in enumerate(self.specs):
            self._emit("queued", spec.id)
            kwargs = spec.call_kwargs(self.scale)
            digest = None
            if self.cache is not None:
                digest = self.cache.digest_for(
                    f"{spec.module}:{spec.func}", kwargs,
                    param_schema=spec.schema_doc() if spec.params else None)
                t0 = time.perf_counter()
                cached = self.cache.get(digest)
                if cached is not None:
                    self._finish(by_index, index, TaskOutcome(
                        id=spec.id, status="ok", result=cached,
                        attempts=0, wall_s=time.perf_counter() - t0,
                        cache_hit=True, result_digest=cached.digest()))
                    continue
            todo.append(_Pending(index, spec, kwargs, digest))

        if self.inline:
            self._run_inline(by_index, todo)
        else:
            self._run_pool(by_index, todo)

        self.outcomes = [by_index[i] for i in sorted(by_index)]
        wall = time.perf_counter() - started
        source = (self.cache.source_digest() if self.cache is not None
                  else source_fingerprint())
        return build_manifest(
            self.outcomes,
            run_id=run_id or time.strftime("run-%Y%m%d-%H%M%S"),
            scale=self.scale, jobs=self.jobs,
            cache_enabled=self.cache is not None,
            source_digest=source, wall_s=wall, sweep=sweep)

    # -- execution strategies ----------------------------------------

    def _store(self, task: _Pending, result: ExperimentResult) -> None:
        if self.cache is not None and task.digest is not None:
            self.cache.put(task.digest, result, meta={
                "experiment": callable_id(task.spec.resolve()),
                "id": task.spec.id,
            })

    def _run_inline(self, by_index: dict[int, TaskOutcome],
                    todo: list[_Pending]) -> None:
        for task in todo:
            attempt = 0
            while True:
                attempt += 1
                self._emit("start", task.spec.id, attempt=attempt)
                t0 = time.perf_counter()
                try:
                    result = task.spec.resolve()(**task.kwargs)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    wall = time.perf_counter() - t0
                    if attempt <= self.retries:
                        self._emit("retry", task.spec.id, attempt=attempt,
                                   wall_s=wall, message=type(exc).__name__)
                        time.sleep(self.backoff * attempt)
                        continue
                    self._finish(by_index, task.index, TaskOutcome(
                        id=task.spec.id, status="failed",
                        error=error_info(exc), attempts=attempt, wall_s=wall))
                else:
                    self._store(task, result)
                    self._finish(by_index, task.index, TaskOutcome(
                        id=task.spec.id, status="ok", result=result,
                        attempts=attempt, wall_s=time.perf_counter() - t0,
                        result_digest=result.digest()))
                break

    def _spawn(self, task: _Pending, worker: int) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=child_entry,
            args=(child_conn, task.spec.module, task.spec.func,
                  task.kwargs, self.extra_sys_path),
            daemon=True)
        process.start()
        child_conn.close()
        self._emit("start", task.spec.id, worker=worker, attempt=task.attempt)
        return _Running(task=task, process=process, conn=parent_conn,
                        worker=worker, started=time.perf_counter())

    def _run_pool(self, by_index: dict[int, TaskOutcome],
                  todo: list[_Pending]) -> None:
        queue: deque[_Pending] = deque(todo)
        running: dict[int, _Running] = {}
        free = list(range(self.jobs))

        def reap(run: _Running) -> None:
            run.process.join(timeout=5)
            try:
                run.conn.close()
            except OSError:
                pass
            del running[run.worker]
            free.append(run.worker)

        def settle(run: _Running, kind: str, payload: Any) -> None:
            task, wall = run.task, time.perf_counter() - run.started
            reap(run)
            if kind == "ok":
                result = ExperimentResult.from_dict(payload)
                self._store(task, result)
                self._finish(by_index, task.index, TaskOutcome(
                    id=task.spec.id, status="ok", result=result,
                    attempts=task.attempt, wall_s=wall, worker=run.worker,
                    result_digest=result.digest()))
                return
            if task.attempt <= self.retries:
                self._emit("retry", task.spec.id, worker=run.worker,
                           attempt=task.attempt, wall_s=wall,
                           message=payload.get("type", ""))
                task.attempt += 1
                task.not_before = (time.perf_counter()
                                   + self.backoff * (task.attempt - 1))
                queue.append(task)
                return
            self._finish(by_index, task.index, TaskOutcome(
                id=task.spec.id, status="failed", error=payload,
                attempts=task.attempt, wall_s=wall, worker=run.worker))

        while queue or running:
            now = time.perf_counter()
            # fill free workers with ready (backoff-expired) tasks
            for _ in range(len(queue)):
                if not free:
                    break
                task = queue.popleft()
                if task.not_before > now:
                    queue.append(task)
                    continue
                worker = free.pop()
                running[worker] = self._spawn(task, worker)

            progressed = False
            for run in list(running.values()):
                if run.conn.poll(0):
                    try:
                        kind, payload = run.conn.recv()
                    except (EOFError, OSError):
                        kind, payload = "error", {
                            "type": "WorkerCrash",
                            "message": "worker closed the pipe before "
                                       "sending a result",
                            "traceback": "",
                        }
                    settle(run, kind, payload)
                    progressed = True
                elif not run.process.is_alive():
                    settle(run, "error", {
                        "type": "WorkerCrash",
                        "message": f"worker exited with code "
                                   f"{run.process.exitcode}",
                        "traceback": "",
                    })
                    progressed = True
                elif (self.timeout is not None
                      and time.perf_counter() - run.started > self.timeout):
                    run.process.terminate()
                    self._emit("timeout", run.task.spec.id, worker=run.worker,
                               attempt=run.task.attempt,
                               wall_s=time.perf_counter() - run.started)
                    settle(run, "error", {
                        "type": "TaskTimeout",
                        "message": f"exceeded the per-task timeout "
                                   f"of {self.timeout}s",
                        "traceback": "",
                    })
                    progressed = True
            if not progressed:
                time.sleep(0.01)
