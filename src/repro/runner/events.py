"""Structured progress telemetry emitted while a sweep runs."""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, TextIO


@dataclass(frozen=True)
class RunnerEvent:
    """One progress event: a task changed state.

    ``kind`` is one of ``queued``, ``start``, ``cache-hit``, ``done``,
    ``retry``, ``timeout``, ``failed``.
    """

    kind: str
    task_id: str
    worker: int | None = None
    attempt: int = 0
    wall_s: float | None = None
    message: str = ""


def event_printer(stream: TextIO | None = None) -> Callable[[RunnerEvent], None]:
    """Default telemetry sink: one human-readable line per event."""

    def _print(event: RunnerEvent) -> None:
        out = stream if stream is not None else sys.stderr
        bits = [f"[runner] {event.task_id:<10} {event.kind}"]
        if event.worker is not None:
            bits.append(f"worker={event.worker}")
        if event.attempt:
            bits.append(f"attempt={event.attempt}")
        if event.wall_s is not None:
            bits.append(f"wall={event.wall_s:.1f}s")
        if event.message:
            bits.append(event.message)
        print("  ".join(bits), file=out, flush=True)

    return _print
