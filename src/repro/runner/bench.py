"""Perf-trajectory artifacts (``BENCH_RESULTS.json``) from manifests.

Schema ``pgmcc.bench-results/v1``::

    {
      "schema": "pgmcc.bench-results/v1",
      "run_id": "...",            # run that produced the wall times
      "date": "YYYY-mm-ddTHH:MM:SS+ZZZZ",
      "host": {"python": "...", "platform": "...", "cpus": N},
      "sim_events_per_sec": float | null,   # raw engine throughput
      "scale": float,             # sweep scale the wall times refer to
      "benches": [                # one entry per experiment task
        {"id": "EXP-F2", "wall_s": 1.23, "status": "ok",
         "cache_hit": false}
      ],
      "session_metrics": [        # protocol health, one entry per task
        {"id": "EXP-F5", "schema": "pgmcc.session-metrics/v1",
         "meta": {...}, "counters": {...}, "gauges": {...},
         "spans": {...}}          # that shipped a session-metrics doc
      ],
      "scale_metrics": {          # hybrid scale ladder (EXP-SCALE)
        "1000": {"receivers_per_sec": ..., "bytes_per_receiver": ...,
                 "peak_rss_mb": ..., "wall_s": ..., "rate": ...,
                 "invariant_violations": 0}, ...
      },
      "totals": {...}             # copied from the manifest
    }

Successive files of this shape are the repo's perf trajectory: compare
``sim_events_per_sec`` and per-bench ``wall_s`` across commits (cache
hits report the cache-load time and are flagged, not comparable).
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any

BENCH_SCHEMA = "pgmcc.bench-results/v1"


def measure_sim_events_per_sec(chain: int = 10_000, repeats: int = 3) -> float:
    """Raw event-loop throughput, same workload as
    ``benchmarks/bench_simulator_perf.py::test_bench_event_loop``."""
    from ..simulator import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()

        def tick(n: int) -> None:
            if n:
                sim.schedule(0.001, tick, n - 1)

        sim.schedule(0.0, tick, chain)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, sim.events_processed / elapsed)
    return best


def memory_probe() -> dict[str, int]:
    """Current and peak process memory plus live-object count.

    Linux-first: current RSS from ``/proc/self/status`` (``VmRSS``),
    peak from ``getrusage`` (``ru_maxrss`` is KB on Linux).  Keys are
    bytes.  Used by the hybrid scale cells to report bytes-per-receiver
    and by the CI scale-smoke budget.
    """
    import gc
    import resource

    rss = 0
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                    break
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    if rss == 0:  # pragma: no cover - non-Linux fallback
        rss = peak
    return {
        "rss_bytes": rss,
        "peak_rss_bytes": peak,
        "live_objects": len(gc.get_objects()),
    }


def scale_series_from_manifest(manifest: dict[str, Any]
                               ) -> dict[str, dict[str, Any]]:
    """Lift the hybrid scale series out of a manifest.

    Returns ``{"<n>": {receivers_per_sec, bytes_per_receiver,
    peak_rss_mb, wall_s, rate, invariant_violations}}`` for every
    ``hyb{n}:*`` metric group found in embedded results (EXP-SCALE's
    hybrid ladder).  Empty when the run had no hybrid cells.
    """
    series: dict[str, dict[str, Any]] = {}
    wanted = ("receivers_per_sec", "bytes_per_receiver", "peak_rss_mb",
              "wall_s", "rate", "invariant_violations")
    for task in manifest.get("tasks", ()):
        result = task.get("result") or {}
        # Deterministic protocol metrics live in ``metrics``; measured
        # wall/RSS values travel in the digest-excluded ``perf`` dict.
        for source in (result.get("metrics") or {}, result.get("perf") or {}):
            for key, value in source.items():
                if not key.startswith("hyb") or ":" not in key:
                    continue
                prefix, metric = key.split(":", 1)
                if metric not in wanted:
                    continue
                series.setdefault(prefix[3:], {})[metric] = value
    return dict(sorted(series.items(), key=lambda kv: int(kv[0])))


def session_metrics_from_manifest(manifest: dict[str, Any]
                                  ) -> list[dict[str, Any]]:
    """Pull every ``pgmcc.session-metrics/v1`` document out of a
    manifest's embedded results, in task order.  Each entry carries the
    experiment id alongside the document."""
    docs = []
    for task in manifest.get("tasks", ()):
        result = task.get("result") or {}
        telemetry = result.get("telemetry")
        if telemetry is not None:
            docs.append({"id": task["id"], **telemetry})
    return docs


def bench_results_from_manifest(manifest: dict[str, Any],
                                events_per_sec: float | None = None
                                ) -> dict[str, Any]:
    """Derive the perf-trajectory artifact from a run manifest."""
    return {
        "schema": BENCH_SCHEMA,
        "run_id": manifest["run_id"],
        "date": manifest["created"],
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "sim_events_per_sec": (round(events_per_sec, 1)
                               if events_per_sec is not None else None),
        "scale": manifest["scale"],
        "benches": [
            {
                "id": task["id"],
                "wall_s": task["wall_s"],
                "status": task["status"],
                "cache_hit": task["cache_hit"],
            }
            for task in manifest["tasks"]
        ],
        # Protocol health next to perf: counters/gauges/spans of every
        # shipped session-metrics document (series/histogram reservoirs
        # stay in the manifest — this artifact is the compact view).
        "session_metrics": [
            {k: doc[k] for k in
             ("id", "schema", "enabled", "meta", "counters", "gauges", "spans")
             if k in doc}
            for doc in session_metrics_from_manifest(manifest)
        ],
        # Receivers-per-second / bytes-per-receiver trajectory of the
        # hybrid scale ladder (empty when EXP-SCALE didn't run).
        # Additive key: the schema stays at v1 per the API.md rules.
        "scale_metrics": scale_series_from_manifest(manifest),
        "totals": manifest["totals"],
    }
