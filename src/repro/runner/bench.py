"""Perf-trajectory artifacts (``BENCH_RESULTS.json``) from manifests.

Schema ``pgmcc.bench-results/v1``::

    {
      "schema": "pgmcc.bench-results/v1",
      "run_id": "...",            # run that produced the wall times
      "date": "YYYY-mm-ddTHH:MM:SS+ZZZZ",
      "host": {"python": "...", "platform": "...", "cpus": N},
      "sim_events_per_sec": float | null,   # raw engine throughput
      "scale": float,             # sweep scale the wall times refer to
      "benches": [                # one entry per experiment task
        {"id": "EXP-F2", "wall_s": 1.23, "status": "ok",
         "cache_hit": false}
      ],
      "session_metrics": [        # protocol health, one entry per task
        {"id": "EXP-F5", "schema": "pgmcc.session-metrics/v1",
         "meta": {...}, "counters": {...}, "gauges": {...},
         "spans": {...}}          # that shipped a session-metrics doc
      ],
      "totals": {...}             # copied from the manifest
    }

Successive files of this shape are the repo's perf trajectory: compare
``sim_events_per_sec`` and per-bench ``wall_s`` across commits (cache
hits report the cache-load time and are flagged, not comparable).
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any

BENCH_SCHEMA = "pgmcc.bench-results/v1"


def measure_sim_events_per_sec(chain: int = 10_000, repeats: int = 3) -> float:
    """Raw event-loop throughput, same workload as
    ``benchmarks/bench_simulator_perf.py::test_bench_event_loop``."""
    from ..simulator import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()

        def tick(n: int) -> None:
            if n:
                sim.schedule(0.001, tick, n - 1)

        sim.schedule(0.0, tick, chain)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, sim.events_processed / elapsed)
    return best


def session_metrics_from_manifest(manifest: dict[str, Any]
                                  ) -> list[dict[str, Any]]:
    """Pull every ``pgmcc.session-metrics/v1`` document out of a
    manifest's embedded results, in task order.  Each entry carries the
    experiment id alongside the document."""
    docs = []
    for task in manifest.get("tasks", ()):
        result = task.get("result") or {}
        telemetry = result.get("telemetry")
        if telemetry is not None:
            docs.append({"id": task["id"], **telemetry})
    return docs


def bench_results_from_manifest(manifest: dict[str, Any],
                                events_per_sec: float | None = None
                                ) -> dict[str, Any]:
    """Derive the perf-trajectory artifact from a run manifest."""
    return {
        "schema": BENCH_SCHEMA,
        "run_id": manifest["run_id"],
        "date": manifest["created"],
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "sim_events_per_sec": (round(events_per_sec, 1)
                               if events_per_sec is not None else None),
        "scale": manifest["scale"],
        "benches": [
            {
                "id": task["id"],
                "wall_s": task["wall_s"],
                "status": task["status"],
                "cache_hit": task["cache_hit"],
            }
            for task in manifest["tasks"]
        ],
        # Protocol health next to perf: counters/gauges/spans of every
        # shipped session-metrics document (series/histogram reservoirs
        # stay in the manifest — this artifact is the compact view).
        "session_metrics": [
            {k: doc[k] for k in
             ("id", "schema", "enabled", "meta", "counters", "gauges", "spans")
             if k in doc}
            for doc in session_metrics_from_manifest(manifest)
        ],
        "totals": manifest["totals"],
    }
