"""``python -m repro.runner`` — the parallel, cached experiment sweep.

Examples::

    python -m repro.runner --list
    python -m repro.runner -j auto                 # full report, all cores
    python -m repro.runner -j 4 --scale 0.1        # smoke sweep
    python -m repro.runner EXP-F3 EXP-F4 --no-cache
    python -m repro.runner -j auto --scale 0.1 \
        --manifest results/manifest.json --bench-json results/BENCH_RESULTS.json

Exit status: 0 when every task succeeded, 1 when any task is reported
failed, 2 on usage errors (e.g. an unknown experiment id).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..experiments.run_all import specs_by_id
from .bench import (
    bench_results_from_manifest,
    measure_sim_events_per_sec,
    session_metrics_from_manifest,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .events import event_printer
from .orchestrator import Orchestrator, auto_jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel experiment orchestrator with "
                    "content-addressed result caching.")
    parser.add_argument("experiments", nargs="*", metavar="EXP-ID",
                        help="subset of experiment ids (default: all; "
                             "see --list); a leading 'run' token and "
                             "lowercase/underscore id spellings are accepted")
    parser.add_argument("-j", "--jobs", default="1",
                        help="worker processes, or 'auto' for one per core "
                             "(default: 1)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fraction of paper-faithful durations "
                             "(default: 1.0)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; do not read or write the "
                             "result cache")
    parser.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                        help=f"cache location (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="where to write the run manifest "
                             "(default: results/manifest-<run_id>.json)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="also write a BENCH_RESULTS perf-trajectory "
                             "artifact (includes a simulator events/sec probe)")
    parser.add_argument("--session-metrics", default=None, metavar="PATH",
                        help="also write the sweep's pgmcc.session-metrics/v1 "
                             "documents (one JSON array, task order)")
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-task wall-clock timeout in seconds "
                             "(default: 1800; 0 disables)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per failing task (default: 1)")
    parser.add_argument("--list", action="store_true",
                        help="print the experiment registry and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress telemetry on stderr")
    parser.add_argument("--no-report", action="store_true",
                        help="skip the per-experiment report tables")
    return parser


def _format_param(doc: dict) -> str:
    """One ``--list`` schema line from a ParamSpec doc."""
    text = f"{doc['name']}: {doc['type']}"
    if "default" in doc:
        text += f" = {doc['default']}"
    constraints = []
    if "choices" in doc:
        constraints.append("one of " + ", ".join(map(str, doc["choices"])))
    if "low" in doc:
        constraints.append(f">= {doc['low']}")
    if "high" in doc:
        constraints.append(f"<= {doc['high']}")
    if constraints:
        text += f"  ({'; '.join(constraints)})"
    if doc.get("help"):
        text += f"  -- {doc['help']}"
    return text


def list_registry(file=None) -> None:
    from ..experiments.registry import registered_specs

    out = file or sys.stdout
    specs = registered_specs(include_hidden=True)
    width = max(len(spec.id) for spec in specs)
    for spec in specs:
        target = f"{spec.module.rsplit('.', 1)[-1]}.{spec.func}"
        tag = " [sweep-cell]" if spec.hidden else ""
        print(f"{spec.id:<{width}}  x{spec.scale_factor:<4g} "
              f"{target:<28} {spec.description}{tag}", file=out)
        for doc in spec.schema_doc():
            print(f"{'':<{width}}    {_format_param(doc)}", file=out)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        list_registry()
        return 0
    experiments = args.experiments
    if experiments and experiments[0] == "run":
        # ``python -m repro.runner run EXP-ID ...``: tolerate the
        # subcommand-style spelling (common muscle memory from other
        # runners); ids themselves are normalized in specs_by_id.
        experiments = experiments[1:]
    try:
        specs = specs_by_id(experiments)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    jobs = auto_jobs() if args.jobs == "auto" else max(1, int(args.jobs))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    run_id = time.strftime("run-%Y%m%d-%H%M%S")

    orch = Orchestrator(
        specs, scale=args.scale, jobs=jobs, cache=cache,
        timeout=args.timeout or None, retries=args.retries,
        on_event=None if args.quiet else event_printer())
    manifest = orch.run(run_id=run_id)

    manifest_path = Path(args.manifest or
                         Path("results") / f"manifest-{run_id}.json")
    from .manifest import save_manifest

    save_manifest(manifest, manifest_path)

    if args.bench_json:
        bench = bench_results_from_manifest(
            manifest, measure_sim_events_per_sec())
        bench_path = Path(args.bench_json)
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(bench, indent=2, sort_keys=True)
                              + "\n")

    if args.session_metrics:
        docs = session_metrics_from_manifest(manifest)
        metrics_path = Path(args.session_metrics)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(json.dumps(docs, indent=2, sort_keys=True)
                                + "\n")
        if not docs:
            print("warning: no session-metrics documents in this sweep "
                  f"(wrote empty array to {metrics_path})", file=sys.stderr)

    if not args.no_report:
        for outcome in orch.outcomes:
            if outcome.result is not None:
                print(f"\n##### {outcome.id} (wall {outcome.wall_s:.1f}s"
                      f"{', cached' if outcome.cache_hit else ''})")
                print(outcome.result.report())

    totals = manifest["totals"]
    print(f"\n{totals['ok']}/{totals['tasks']} ok, "
          f"{totals['failed']} failed, {totals['cache_hits']} cache hits; "
          f"wall {totals['wall_s']:.1f}s, serial {totals['serial_wall_s']:.1f}s"
          f" (speedup {totals['speedup']}x)")
    print(f"manifest: {manifest_path}")
    print(f"results digest: {manifest['results_digest']}")
    for outcome in orch.outcomes:
        if outcome.status == "failed":
            print(f"\n--- FAILED {outcome.id} "
                  f"({outcome.error['type']}: {outcome.error['message']}) ---")
            if outcome.error["traceback"]:
                print(outcome.error["traceback"], end="")
    return 1 if totals["failed"] else 0
