"""TCP Reno/NewReno sender.

This is the baseline the paper competes pgmcc against: slow start,
congestion avoidance, fast retransmit/fast recovery with NewReno
partial-ACK handling (the behaviour of the late-1990s BSD stacks the
testbed ran), and an RFC 6298-style retransmission timer with Karn's
algorithm and exponential backoff.

The sender is bulk-mode: it always has data, like the paper's TCP
flows.  ``cwnd`` is in segments.
"""

from __future__ import annotations

from typing import Optional

from ..simulator.engine import Timer
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.trace import FlowTrace
from .packets import DEFAULT_PAYLOAD, PROTO, TcpAck, TcpSegment

#: minimum retransmission timeout (seconds)
MIN_RTO = 0.5
MAX_RTO = 16.0
#: initial slow-start threshold (segments) — effectively "infinite"
INITIAL_SSTHRESH = 1 << 20
DUPACK_THRESHOLD = 3


class TcpSender:
    """One bulk TCP flow's sending side."""

    def __init__(
        self,
        host: Host,
        dst: str,
        flow_id: int,
        payload_size: int = DEFAULT_PAYLOAD,
        trace: Optional[FlowTrace] = None,
        max_segments: Optional[int] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.dst = dst
        self.flow_id = flow_id
        self.payload_size = payload_size
        self.trace = trace if trace is not None else FlowTrace(f"tcp-{flow_id}")
        #: stop after this many segments are acked (None = run forever)
        self.max_segments = max_segments

        # congestion state
        self.cwnd = 1.0
        self.ssthresh = float(INITIAL_SSTHRESH)
        self.snd_una = 0  # oldest unacknowledged segment
        self.snd_nxt = 0  # next segment to send
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = 0

        # RTT estimation (Karn: only time never-retransmitted segments)
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = 1.0
        self._backoff = 1.0
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._retransmitted: set[int] = set()

        self._rto_timer = Timer(self.sim, self._on_rto)
        self._running = False
        self._closed = False
        # statistics
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("sender already started")
        self._running = True
        self._try_send()

    def close(self) -> None:
        self._closed = True
        self._rto_timer.cancel()

    @property
    def done(self) -> bool:
        return self.max_segments is not None and self.snd_una >= self.max_segments

    # -- transmit path --------------------------------------------------------

    def _flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def _try_send(self) -> None:
        if not self._running or self._closed or self.done:
            return
        limit = self.max_segments if self.max_segments is not None else None
        while self._flight_size() < int(self.cwnd):
            if limit is not None and self.snd_nxt >= limit:
                break
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1

    def _transmit(self, seq: int, is_retransmission: bool = False) -> None:
        segment = TcpSegment(self.flow_id, seq, self.payload_size)
        self.host.send(
            Packet(self.host.name, self.dst, segment.wire_size(), segment, PROTO)
        )
        self.segments_sent += 1
        if is_retransmission:
            self.retransmissions += 1
            self._retransmitted.add(seq)
            self.trace.log(self.sim.now, "rdata", seq, self.payload_size)
        else:
            self.trace.log(self.sim.now, "data", seq, self.payload_size)
            if self._timed_seq is None and seq not in self._retransmitted:
                self._timed_seq = seq
                self._timed_at = self.sim.now
        if not self._rto_timer.armed:
            self._rto_timer.start(self._rto * self._backoff)

    # -- ACK processing --------------------------------------------------------

    def on_ack(self, ack: TcpAck) -> None:
        if self._closed:
            return
        self.trace.log(self.sim.now, "ack", ack.ackno)
        if ack.ackno > self.snd_una:
            self._on_new_ack(ack.ackno)
        elif ack.ackno == self.snd_una and self._flight_size() > 0:
            self._on_dupack()
        self._try_send()

    def _on_new_ack(self, ackno: int) -> None:
        newly_acked = ackno - self.snd_una
        self.snd_una = ackno
        self._sample_rtt(ackno)
        self._backoff = 1.0
        self._rto_timer.cancel()
        if self._flight_size() > 0:
            self._rto_timer.start(self._rto)

        if self.in_recovery:
            if ackno >= self.recovery_point:
                # Full ACK: leave fast recovery (NewReno).
                self.in_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            else:
                # Partial ACK: retransmit the next hole, deflate cwnd.
                self._transmit(self.snd_una, is_retransmission=True)
                self.cwnd = max(1.0, self.cwnd - newly_acked + 1)
            return

        self.dupacks = 0
        if self.cwnd < self.ssthresh:
            # Slow start with Appropriate Byte Counting (RFC 3465,
            # L=2): a cumulative ACK covering many segments — e.g.
            # after an RTO recovery — must not inflate cwnd by the
            # whole jump at once.
            self.cwnd += min(newly_acked, 2)
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            # Window inflation keeps the pipe full during recovery.
            self.cwnd += 1.0
            return
        if self.dupacks >= DUPACK_THRESHOLD:
            self.fast_retransmits += 1
            self.ssthresh = max(self._flight_size() / 2.0, 2.0)
            self.in_recovery = True
            self.recovery_point = self.snd_nxt
            self._transmit(self.snd_una, is_retransmission=True)
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD
            self.trace.log(self.sim.now, "cc-loss", self.snd_una)

    # -- RTT estimation ---------------------------------------------------------

    def _sample_rtt(self, ackno: int) -> None:
        if self._timed_seq is None or ackno <= self._timed_seq:
            return
        if self._timed_seq in self._retransmitted:
            self._timed_seq = None
            return
        sample = self.sim.now - self._timed_at
        self._timed_seq = None
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar += 0.25 * (abs(sample - self._srtt) - self._rttvar)
            self._srtt += 0.125 * (sample - self._srtt)
        self._rto = min(MAX_RTO, max(MIN_RTO, self._srtt + 4.0 * self._rttvar))

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    # -- timeout ---------------------------------------------------------------

    def _on_rto(self) -> None:
        if self._closed or self._flight_size() == 0 or self.done:
            return
        self.timeouts += 1
        self.trace.log(self.sim.now, "timeout", self.snd_una)
        self.ssthresh = max(self._flight_size() / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False
        self.dupacks = 0
        self.snd_nxt = self.snd_una  # go-back-N
        self._backoff = min(self._backoff * 2.0, 64.0)
        self._timed_seq = None
        self._transmit(self.snd_nxt, is_retransmission=True)
        self.snd_nxt += 1
        self._rto_timer.restart(self._rto * self._backoff)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpSender flow={self.flow_id} cwnd={self.cwnd:.1f} "
            f"una={self.snd_una} nxt={self.snd_nxt}>"
        )
