"""TCP receiver: cumulative ACKs with optional delayed ACKs.

Out-of-order segments are buffered and acknowledged immediately with a
duplicate ACK (what triggers the sender's fast retransmit).  The paper
notes pgmcc has no delayed ACKs while TCP usually does; both receiver
behaviours are supported so the inter-protocol fairness benches can
cover the difference.
"""

from __future__ import annotations

from ..simulator.engine import Timer
from ..simulator.node import Host
from ..simulator.packet import Packet
from .packets import PROTO, TcpAck, TcpSegment

#: delayed-ACK timer (RFC 1122 allows up to 500 ms; BSD used 200 ms)
DELACK_TIMEOUT = 0.2


class TcpReceiver:
    """One bulk TCP flow's receiving side."""

    def __init__(self, host: Host, src: str, flow_id: int, delayed_acks: bool = False):
        self.host = host
        self.sim = host.sim
        self.src = src
        self.flow_id = flow_id
        self.delayed_acks = delayed_acks
        self.rcv_nxt = 0
        self._out_of_order: set[int] = set()
        self._delack_pending = False
        self._delack_timer = Timer(self.sim, self._delack_fire)
        self.segments_received = 0
        self.duplicates = 0
        self.acks_sent = 0

    def on_segment(self, segment: TcpSegment) -> None:
        self.segments_received += 1
        if segment.seq < self.rcv_nxt or segment.seq in self._out_of_order:
            self.duplicates += 1
            self._send_ack()  # duplicate data still elicits an ACK
            return
        if segment.seq == self.rcv_nxt:
            self.rcv_nxt += 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
            if self.delayed_acks:
                self._maybe_delay_ack()
            else:
                self._send_ack()
        else:
            # A gap: buffer and send an immediate duplicate ACK.
            self._out_of_order.add(segment.seq)
            self._send_ack()

    def _maybe_delay_ack(self) -> None:
        if self._delack_pending:
            # Second full segment: ACK now (RFC 1122 "at least every
            # second segment").
            self._delack_timer.cancel()
            self._delack_pending = False
            self._send_ack()
        else:
            self._delack_pending = True
            self._delack_timer.restart(DELACK_TIMEOUT)

    def _delack_fire(self) -> None:
        self._delack_pending = False
        self._send_ack()

    def _send_ack(self) -> None:
        ack = TcpAck(self.flow_id, self.rcv_nxt)
        self.host.send(Packet(self.host.name, self.src, ack.wire_size(), ack, PROTO))
        self.acks_sent += 1

    def close(self) -> None:
        self._delack_timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpReceiver flow={self.flow_id} rcv_nxt={self.rcv_nxt}>"
