"""TCP segment and ACK objects for the simulated baseline.

Sequence numbers count *segments*, not bytes (every data segment in
the experiments carries a full payload, 1460 bytes as in the paper);
analysis converts to byte sequence numbers when comparing slopes with
pgmcc flows.
"""

from __future__ import annotations

from dataclasses import dataclass

#: simulator protocol tag
PROTO = "tcp"
#: TCP/IP header overhead per segment (bytes)
HEADER_SIZE = 40
#: the paper's TCP payload size
DEFAULT_PAYLOAD = 1460


@dataclass
class TcpSegment:
    """One data segment."""

    flow_id: int
    seq: int  # segment index
    payload_len: int

    def wire_size(self) -> int:
        return self.payload_len + HEADER_SIZE


@dataclass
class TcpAck:
    """A cumulative acknowledgement: ``ackno`` = next expected segment."""

    flow_id: int
    ackno: int

    def wire_size(self) -> int:
        return HEADER_SIZE
