"""TCP flow wiring.

Hosts demultiplex TCP traffic by flow id, so several flows can share a
host (Fig. 6 runs two TCP connections through one bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.topology import Network
from ..simulator.trace import FlowTrace
from .packets import DEFAULT_PAYLOAD, PROTO, TcpAck, TcpSegment
from .receiver import TcpReceiver
from .sender import TcpSender



class TcpHostAgent:
    """Per-host TCP demultiplexer: routes segments/ACKs by flow id."""

    def __init__(self, host: Host):
        self.host = host
        self._senders: dict[int, TcpSender] = {}
        self._receivers: dict[int, TcpReceiver] = {}
        host.register_agent(PROTO, self)

    @classmethod
    def on(cls, host: Host) -> "TcpHostAgent":
        """Get or create the demux agent for ``host``."""
        agent = host._agents.get(PROTO)  # noqa: SLF001 - deliberate peek
        if isinstance(agent, cls):
            return agent
        if agent is not None:
            raise RuntimeError(f"{host.name} already has a non-TCP agent for {PROTO!r}")
        return cls(host)

    def register_sender(self, sender: TcpSender) -> None:
        self._senders[sender.flow_id] = sender

    def register_receiver(self, receiver: TcpReceiver) -> None:
        self._receivers[receiver.flow_id] = receiver

    def handle_packet(self, packet: Packet) -> None:
        msg = packet.payload
        if isinstance(msg, TcpSegment):
            receiver = self._receivers.get(msg.flow_id)
            if receiver is not None:
                receiver.on_segment(msg)
        elif isinstance(msg, TcpAck):
            sender = self._senders.get(msg.flow_id)
            if sender is not None:
                sender.on_ack(msg)


@dataclass
class TcpFlow:
    """Handles for one wired-up TCP connection."""

    sender: TcpSender
    receiver: TcpReceiver
    flow_id: int

    @property
    def trace(self) -> FlowTrace:
        return self.sender.trace

    def throughput_bps(self, t0: float, t1: float) -> float:
        """Goodput over [t0, t1): first-transmission payload bits/s."""
        if t1 <= t0:
            return 0.0
        return self.trace.between(t0, t1).bytes_sent("data") * 8.0 / (t1 - t0)

    def close(self) -> None:
        self.sender.close()
        self.receiver.close()


def create_tcp_flow(
    net: Network,
    src_host: str,
    dst_host: str,
    start_at: float = 0.0,
    stop_at: Optional[float] = None,
    payload_size: int = DEFAULT_PAYLOAD,
    delayed_acks: bool = False,
    max_segments: Optional[int] = None,
    trace_name: Optional[str] = None,
) -> TcpFlow:
    """Create and schedule one bulk TCP connection on ``net``."""
    flow_id = net.next_flow_id()
    sender = TcpSender(
        net.host(src_host),
        dst_host,
        flow_id,
        payload_size=payload_size,
        trace=FlowTrace(trace_name or f"tcp{flow_id}"),
        max_segments=max_segments,
    )
    receiver = TcpReceiver(net.host(dst_host), src_host, flow_id, delayed_acks)
    TcpHostAgent.on(net.host(src_host)).register_sender(sender)
    TcpHostAgent.on(net.host(dst_host)).register_receiver(receiver)
    if start_at <= 0:
        net.sim.schedule(0.0, sender.start)
    else:
        net.sim.schedule_at(start_at, sender.start)
    if stop_at is not None:
        net.sim.schedule_at(stop_at, sender.close)
    return TcpFlow(sender, receiver, flow_id)
