"""TCP Reno/NewReno baseline.

Public surface::

    from repro.tcp import TcpSender, TcpReceiver, TcpFlow, create_tcp_flow
"""

from .packets import DEFAULT_PAYLOAD, HEADER_SIZE, PROTO, TcpAck, TcpSegment
from .receiver import TcpReceiver
from .sender import TcpSender
from .session import TcpFlow, TcpHostAgent, create_tcp_flow

__all__ = [
    "DEFAULT_PAYLOAD",
    "HEADER_SIZE",
    "PROTO",
    "TcpAck",
    "TcpSegment",
    "TcpReceiver",
    "TcpSender",
    "TcpFlow",
    "TcpHostAgent",
    "create_tcp_flow",
]
