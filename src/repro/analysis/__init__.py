"""Trace analysis: throughput, fairness, binned bandwidth series."""

from .metrics import (
    coefficient_of_variation,
    jain_index,
    loss_event_rate,
    throughput_bps,
    throughput_ratio,
)
from .plots import render_bandwidth, render_flow_comparison, render_time_seq
from .timeseries import (
    Bin,
    bandwidth_series,
    cumulative_bytes,
    mean_rate,
    plateau_rate,
)

__all__ = [
    "coefficient_of_variation",
    "jain_index",
    "loss_event_rate",
    "throughput_bps",
    "throughput_ratio",
    "render_bandwidth",
    "render_flow_comparison",
    "render_time_seq",
    "Bin",
    "bandwidth_series",
    "cumulative_bytes",
    "mean_rate",
    "plateau_rate",
]
