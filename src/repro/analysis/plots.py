"""Plain-text renderings of the paper's plot styles.

The paper's figures are time/sequence-number scatter plots with
NAK diamonds and acker-switch bars, plus bandwidth-vs-time curves.
These helpers render the same views as fixed-width text, so examples
and experiment reports can show the figures without a plotting stack.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..simulator.trace import FlowTrace
from .timeseries import Bin, bandwidth_series


def render_bandwidth(
    bins: Sequence[Bin],
    width: int = 50,
    max_rate_bps: Optional[float] = None,
    unit: float = 1000.0,
) -> str:
    """Horizontal bar chart of a bandwidth series (rates in kbit/s)."""
    if not bins:
        return "(empty series)"
    peak = max_rate_bps if max_rate_bps is not None else max(b.rate_bps for b in bins)
    peak = max(peak, 1.0)
    lines = []
    for b in bins:
        bar = "#" * int(round(width * min(b.rate_bps, peak) / peak))
        lines.append(f"{b.t_start:7.1f}s {b.rate_bps / unit:9.1f} |{bar}")
    return "\n".join(lines)


def render_time_seq(
    trace: FlowTrace,
    t0: float,
    t1: float,
    width: int = 72,
    height: int = 20,
    data_kinds: tuple[str, ...] = ("data",),
    mark_kinds: dict[str, str] = None,
) -> str:
    """The paper's time/sequence plot as a character grid.

    Data transmissions render as ``.``; additional event kinds can be
    overlaid with their own glyphs (the figures use diamonds for NAKs
    and vertical bars for acker switches) via ``mark_kinds``, e.g.
    ``{"nak": "o", "acker-switch": "|"}``.
    """
    if mark_kinds is None:
        mark_kinds = {"nak": "o", "acker-switch": "|"}
    records = [r for r in trace.records if t0 <= r.time < t1]
    data = [r for r in records if r.kind in data_kinds]
    if not data:
        return "(no data records in window)"
    seq_min = min(r.seq for r in data)
    seq_max = max(r.seq for r in data)
    seq_span = max(seq_max - seq_min, 1)
    span = t1 - t0

    grid = [[" "] * width for _ in range(height)]

    def put(time: float, seq: int, glyph: str) -> None:
        x = min(width - 1, int(width * (time - t0) / span))
        y = min(height - 1, int(height * (seq - seq_min) / seq_span))
        grid[height - 1 - y][x] = glyph

    for r in data:
        put(r.time, r.seq, ".")
    for kind, glyph in mark_kinds.items():
        for r in records:
            if r.kind != kind:
                continue
            if glyph == "|":
                x = min(width - 1, int(width * (r.time - t0) / span))
                for row in grid:
                    if row[x] == " ":
                        row[x] = "|"
            else:
                put(r.time, r.seq, glyph)

    top = f"seq {seq_min}..{seq_max}  t {t0:.0f}..{t1:.0f}s"
    legend = "  [. data" + "".join(
        f"  {glyph} {kind}" for kind, glyph in mark_kinds.items()
    ) + "]"
    body = "\n".join("".join(row) for row in grid)
    return top + legend + "\n" + body


def render_flow_comparison(
    traces: dict[str, FlowTrace],
    t0: float,
    t1: float,
    bin_width: float,
    width: int = 40,
) -> str:
    """Side-by-side bandwidth table for several flows (the way the
    Fig. 5 bandwidth panel compares PGM and TCP)."""
    names = list(traces)
    all_bins = {
        name: bandwidth_series(traces[name], t0, t1, bin_width) for name in names
    }
    peak = max(
        (b.rate_bps for bins in all_bins.values() for b in bins), default=1.0
    )
    header = "time".rjust(8) + "".join(name.rjust(12) for name in names)
    lines = [header]
    n_bins = len(next(iter(all_bins.values())))
    for i in range(n_bins):
        t = t0 + i * bin_width
        cells = "".join(
            f"{all_bins[name][i].rate_bps / 1000:12.1f}" for name in names
        )
        lines.append(f"{t:7.1f}s{cells}")
    return "\n".join(lines)
