"""Throughput and fairness metrics.

These turn :class:`~repro.simulator.trace.FlowTrace` logs into the
quantities the paper's figures show: per-flow throughput over windows,
fairness between flows, and event counts (losses, acker switches).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..simulator.trace import FlowTrace


def throughput_bps(trace: FlowTrace, t0: float, t1: float, kind: str = "data") -> float:
    """Average payload throughput of ``kind`` records over [t0, t1)."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    return trace.between(t0, t1).bytes_sent(kind) * 8.0 / (t1 - t0)


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even allocation.

    For n flows the index ranges from 1/n (one flow hogs everything)
    to 1 (equal shares).
    """
    if not rates:
        raise ValueError("need at least one rate")
    total = sum(rates)
    if total == 0:
        return 1.0  # nobody got anything: vacuously fair
    squares = sum(r * r for r in rates)
    return total * total / (len(rates) * squares)


def throughput_ratio(a: float, b: float) -> float:
    """max/min ratio of two rates; ``inf`` if one is starved."""
    lo, hi = sorted((a, b))
    if lo <= 0:
        return math.inf
    return hi / lo


def loss_event_rate(trace: FlowTrace, t0: float, t1: float) -> float:
    """Congestion reactions per second over [t0, t1)."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    return trace.between(t0, t1).count("cc-loss") / (t1 - t0)


def coefficient_of_variation(values: Iterable[float]) -> float:
    """stddev/mean — used to check rate stability across windows."""
    vals = list(values)
    if not vals:
        raise ValueError("need at least one value")
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return math.sqrt(var) / mean
