"""Binned time series from flow traces.

The bandwidth-vs-time curves of Figs. 5 and 7 are produced by binning
the data-transmission records of a trace; plateau detection extracts
the rate levels those figures are read by.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.trace import FlowTrace


@dataclass(frozen=True)
class Bin:
    """One time bin of a bandwidth series."""

    t_start: float
    t_end: float
    bits: int

    @property
    def rate_bps(self) -> float:
        return self.bits / (self.t_end - self.t_start)

    @property
    def midpoint(self) -> float:
        return (self.t_start + self.t_end) / 2.0


def bandwidth_series(
    trace: FlowTrace,
    t0: float,
    t1: float,
    bin_width: float,
    kinds: tuple[str, ...] = ("data",),
) -> list[Bin]:
    """Payload bandwidth in fixed-width bins over [t0, t1)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    n_bins = max(1, int(round((t1 - t0) / bin_width)))
    bits = [0] * n_bins
    wanted = set(kinds)
    for record in trace.records:
        if record.kind not in wanted or not t0 <= record.time < t1:
            continue
        index = min(n_bins - 1, int((record.time - t0) / bin_width))
        bits[index] += record.nbytes * 8
    return [
        Bin(t0 + i * bin_width, t0 + (i + 1) * bin_width, b)
        for i, b in enumerate(bits)
    ]


def mean_rate(bins: list[Bin]) -> float:
    """Average rate across bins (equal-width assumed)."""
    if not bins:
        raise ValueError("need at least one bin")
    return sum(b.rate_bps for b in bins) / len(bins)


def plateau_rate(
    trace: FlowTrace, t0: float, t1: float, bin_width: float = 5.0
) -> float:
    """Median bin rate over a window — robust plateau estimate.

    The figures are read by their flat segments; the median resists
    the transients at window edges.
    """
    bins = bandwidth_series(trace, t0, t1, bin_width)
    rates = sorted(b.rate_bps for b in bins)
    n = len(rates)
    if n % 2:
        return rates[n // 2]
    return (rates[n // 2 - 1] + rates[n // 2]) / 2.0


def cumulative_bytes(trace: FlowTrace, kinds: tuple[str, ...] = ("data",)) -> list[tuple[float, int]]:
    """The paper's time/sequence curve: cumulative payload bytes."""
    wanted = set(kinds)
    total = 0
    series = []
    for record in trace.records:
        if record.kind in wanted:
            total += record.nbytes
            series.append((record.time, total))
    return series
