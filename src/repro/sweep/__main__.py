"""``python -m repro.sweep`` entry point."""

import sys

from .cli import main

if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
