"""The ``sweep()`` library entry point.

One call takes a spec (a :class:`SweepSpec`, a plain dict, or a path
to a ``.toml``/``.json`` file), expands it, runs the cells through the
:class:`~repro.runner.orchestrator.Orchestrator` (cache, worker
isolation, retries included), and returns a :class:`SweepRun` bundling
the manifest, the joined cells and the typed report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from ..runner.orchestrator import Orchestrator
from .aggregate import SweepCell, collect_cells, regression_section
from .expand import SweepTask, expand
from .report import build_report
from .spec import SweepSpec, load_spec, spec_from_dict

__all__ = ["SweepRun", "sweep"]

#: default committed perf-trajectory artifact to gate against
DEFAULT_BASELINE = Path("results") / "BENCH_RESULTS.json"


@dataclass
class SweepRun:
    """Everything one sweep produced."""

    spec: SweepSpec
    tasks: list[SweepTask]
    cells: list[SweepCell]
    manifest: dict[str, Any]
    report: dict[str, Any]

    @property
    def ok(self) -> bool:
        """Every cell succeeded and no regression was detected."""
        regression = self.report.get("regression") or {}
        return (self.report["totals"]["failed"] == 0
                and regression.get("status") != "fail")

    @property
    def results(self) -> dict[str, Any]:
        """task id -> :class:`ExperimentResult` for the ok cells."""
        return {c.task.id: c.result for c in self.cells if c.ok}


def _coerce_spec(spec: Union[SweepSpec, dict, str, Path]) -> SweepSpec:
    if isinstance(spec, SweepSpec):
        return spec
    if isinstance(spec, dict):
        return spec_from_dict(spec)
    return load_spec(spec)


def sweep(spec: Union[SweepSpec, dict, str, Path], *,
          jobs: int = 1,
          scale: Optional[float] = None,
          cache_dir: Union[str, Path, None] = DEFAULT_CACHE_DIR,
          baseline: Union[str, Path, None] = DEFAULT_BASELINE,
          probe_engine: bool = False,
          timeout: Optional[float] = None,
          retries: int = 1,
          run_id: Optional[str] = None,
          on_event: Optional[Callable] = None,
          extra_sys_path: tuple = ()) -> SweepRun:
    """Run a declarative sweep end to end; returns a :class:`SweepRun`.

    ``scale`` overrides the spec's own scale (handy for smoke runs of a
    committed spec).  ``cache_dir=None`` disables the result cache.
    ``baseline`` names the committed ``BENCH_RESULTS.json`` to gate
    against (``None`` — or a missing file — skips regression
    detection); ``probe_engine=True`` additionally measures fresh
    engine events/sec for the gate's throughput check (off by default:
    it costs a few seconds and sweeps usually gate on their own scale
    series instead).
    """
    import dataclasses

    spec = _coerce_spec(spec)
    if scale is not None:
        spec = dataclasses.replace(spec, scale=scale)
    tasks = expand(spec)

    cache = None if cache_dir is None else ResultCache(cache_dir)
    orch = Orchestrator(
        [task.spec for task in tasks], scale=spec.scale, jobs=jobs,
        cache=cache, timeout=timeout, retries=retries, on_event=on_event,
        extra_sys_path=extra_sys_path)
    manifest = orch.run(
        run_id=run_id or time.strftime("sweep-%Y%m%d-%H%M%S"),
        sweep={"spec": spec.to_dict(),
               "tasks": {task.id: task.axes_dict for task in tasks}})
    cells = collect_cells(tasks, orch.outcomes)

    regression = None
    if baseline is not None and Path(baseline).exists():
        from ..runner.bench import (
            measure_sim_events_per_sec,
            scale_series_from_manifest,
        )

        events = measure_sim_events_per_sec() if probe_engine else None
        regression = regression_section(
            str(baseline), events_per_sec=events,
            scale_series=scale_series_from_manifest(manifest))

    report = build_report(spec, cells, manifest, regression=regression)
    return SweepRun(spec=spec, tasks=tasks, cells=cells,
                    manifest=manifest, report=report)
