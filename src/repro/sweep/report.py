"""Sweep reports: one JSON document, one markdown rendering.

The report splits, like the run manifest, into *what was computed*
(spec, expanded cells, per-cell result digests and metrics, axis
deltas, ranked table, custom aggregate) and *how this run went* (cache
hits, wall times, regression verdict against a host-dependent
baseline).  ``report_digest`` covers only the first group, so the same
spec at the same scale yields a byte-identical digest whether it ran
``-j1``, ``-jN`` or entirely from cache — that equality is asserted in
CI.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from ..experiments.common import canonical_json
from .aggregate import (
    SweepCell,
    axis_deltas,
    ranked_rows,
    run_custom_aggregate,
    shared_numeric_metrics,
)
from .spec import SweepSpec

__all__ = ["SWEEP_REPORT_SCHEMA", "build_report", "render_markdown",
           "report_digest"]

SWEEP_REPORT_SCHEMA = "pgmcc.sweep-report/v1"

#: per-task report keys that vary run to run and are excluded from the
#: report digest (everything else in a task row is deterministic)
_VOLATILE_TASK_KEYS = ("cache_hit", "wall_s")
_VOLATILE_TOP_KEYS = ("regression", "run", "report_digest")


def report_digest(report: dict[str, Any]) -> str:
    """Digest over the deterministic sections only (see module doc)."""
    doc = {k: v for k, v in report.items() if k not in _VOLATILE_TOP_KEYS}
    doc["tasks"] = [
        {k: v for k, v in task.items() if k not in _VOLATILE_TASK_KEYS}
        for task in report["tasks"]]
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


def build_report(spec: SweepSpec, cells: list[SweepCell],
                 manifest: dict[str, Any],
                 regression: Optional[dict] = None) -> dict[str, Any]:
    """Assemble the full sweep-report document."""
    metrics = shared_numeric_metrics(cells, spec.metrics)
    tasks = []
    for cell in cells:
        row: dict[str, Any] = {
            "id": cell.task.id,
            "axes": cell.task.axes_dict,
            "status": cell.status,
            "result_digest": cell.result_digest,
            "cache_hit": cell.cache_hit,
            "wall_s": round(cell.wall_s, 3),
        }
        if cell.ok:
            row["metrics"] = {m: cell.result.metrics[m] for m in metrics}
        tasks.append(row)

    report: dict[str, Any] = {
        "schema": SWEEP_REPORT_SCHEMA,
        "spec": spec.to_dict(),
        "scale": spec.scale,
        "metrics": metrics,
        "tasks": tasks,
        "totals": {
            "tasks": len(cells),
            "ok": sum(1 for c in cells if c.ok),
            "failed": sum(1 for c in cells if c.status == "failed"),
        },
        "axis_deltas": axis_deltas(spec, cells),
        "ranked": ranked_rows(spec, cells),
        "results_digest": manifest.get("results_digest"),
    }
    aggregate = run_custom_aggregate(spec, cells)
    if aggregate is not None:
        report["aggregate"] = aggregate
    report = json.loads(canonical_json(report))

    # volatile sections last, outside the digest
    report["run"] = {
        "run_id": manifest.get("run_id"),
        "jobs": manifest.get("jobs"),
        "cache_hits": sum(1 for c in cells if c.cache_hit),
        "wall_s": manifest.get("totals", {}).get("wall_s"),
    }
    if regression is not None:
        report["regression"] = json.loads(canonical_json(regression))
    report["report_digest"] = report_digest(report)
    return report


# -- markdown rendering ---------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _table(headers: list[str], rows: list[list[Any]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(_fmt(v) for v in row) + " |"
              for row in rows]
    return lines


def render_markdown(report: dict[str, Any]) -> str:
    """Human-readable rendering of a sweep-report document."""
    spec = report["spec"]
    totals = report["totals"]
    lines = [f"# Sweep report: {spec['name']}", ""]
    if spec.get("description"):
        lines += [spec["description"], ""]
    lines += [
        f"- experiment: `{spec['experiment']}` (mode `{spec['mode']}`, "
        f"scale {_fmt(report['scale'])})",
        f"- tasks: {totals['tasks']} ({totals['ok']} ok, "
        f"{totals['failed']} failed)",
        f"- report digest: `{report['report_digest']}`",
        "",
    ]

    metrics = report["metrics"]
    axis_names = sorted({name for task in report["tasks"]
                         for name in task["axes"]})
    headers = ["task"] + axis_names + metrics + ["status"]
    rows = []
    for task in report["tasks"]:
        row: list[Any] = [f"`{task['id']}`"]
        row += [_fmt(task["axes"].get(a, "")) for a in axis_names]
        row += [_fmt(task.get("metrics", {}).get(m, "")) for m in metrics]
        row.append(task["status"] + (" (cached)" if task["cache_hit"]
                                     else ""))
        rows.append(row)
    lines += ["## Cells", ""] + _table(headers, rows) + [""]

    if report["axis_deltas"]:
        lines += ["## Per-axis deltas", "",
                  "Mean of each shared metric per axis value; deltas are "
                  "against the axis's first declared value.", ""]
        for entry in report["axis_deltas"]:
            lines += [f"### axis `{entry['axis']}` "
                      f"(baseline `{_fmt(entry['baseline'])}`)", ""]
            headers = ["value", "n"] + [f"{m}" for m in metrics] \
                + [f"Δ {m}" for m in metrics]
            rows = []
            for group in entry["groups"]:
                row = [_fmt(group["value"]), group["n"]]
                row += [_fmt(group["means"].get(m, "")) for m in metrics]
                deltas = group.get("deltas", {})
                row += [_fmt(deltas.get(m, "")) if deltas else ""
                        for m in metrics]
                rows.append(row)
            lines += _table(headers, rows) + [""]

    if report["ranked"]:
        rank_by = spec["report"]["rank_by"]
        lines += [f"## Ranked by `{rank_by}`", ""]
        rest = sorted(set(report["ranked"][0]) - {"rank", "task"})
        headers = ["rank", "task"] + rest
        rows = [[_fmt(row[h]) for h in headers] for row in report["ranked"]]
        lines += _table(headers, rows) + [""]

    aggregate = report.get("aggregate")
    if aggregate:
        lines += ["## Aggregate", ""]
        if aggregate.get("metrics"):
            rows = [[f"`{k}`", _fmt(v)]
                    for k, v in sorted(aggregate["metrics"].items())]
            lines += _table(["metric", "value"], rows) + [""]
        if aggregate.get("rows"):
            headers = sorted({k for row in aggregate["rows"] for k in row})
            rows = [[_fmt(row.get(h, "")) for h in headers]
                    for row in aggregate["rows"]]
            lines += _table(headers, rows) + [""]
        if aggregate.get("markdown"):
            lines += [str(aggregate["markdown"]), ""]

    regression = report.get("regression")
    if regression:
        lines += [f"## Regression vs `{regression['baseline']}`: "
                  f"**{regression['status'].upper()}**", ""]
        lines += [f"- {reason}" for reason in regression.get("reasons", [])]
        if not regression.get("reasons"):
            lines += ["- no regressions detected"]
        lines += [""]
    return "\n".join(lines)
