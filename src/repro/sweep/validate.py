"""Up-front spec validation against the experiment registry.

Everything that can be wrong *before* a worker starts is collected
here and raised as one :class:`SweepValidationError` listing every
problem — an unknown experiment id, a typo'd axis, a value outside
the declared :class:`~repro.experiments.common.ParamSpec` bounds, a
``zip`` length mismatch.  Per-value type/range checking reuses the
experiment's own schema, so the sweep DSL and the orchestrator agree
on what is legal.
"""

from __future__ import annotations

from typing import Any

from ..experiments.common import ExperimentSpec
from .spec import MODES, SweepSpec

__all__ = ["SweepValidationError", "validate_spec", "spec_errors"]


class SweepValidationError(ValueError):
    """A sweep spec failed validation; ``errors`` lists every problem."""

    def __init__(self, spec_name: str, errors: list[str]):
        self.errors = list(errors)
        lines = "\n".join(f"  - {e}" for e in self.errors)
        super().__init__(
            f"sweep spec {spec_name!r}: {len(self.errors)} problem(s):\n"
            f"{lines}")


def _experiment(spec: SweepSpec) -> ExperimentSpec | None:
    from ..experiments.registry import get_experiment

    try:
        return get_experiment(spec.experiment)
    except KeyError:
        return None


def spec_errors(spec: SweepSpec) -> list[str]:
    """Every validation problem of ``spec``, as human-readable strings
    (empty = valid)."""
    errors: list[str] = []
    if not spec.name:
        errors.append("empty sweep name")
    if spec.mode not in MODES:
        errors.append(f"unknown mode {spec.mode!r} "
                      f"(one of {', '.join(MODES)})")
    if spec.scale <= 0:
        errors.append(f"scale must be positive, got {spec.scale!r}")

    experiment = _experiment(spec)
    if experiment is None:
        from ..experiments.registry import experiment_ids

        errors.append(f"unknown experiment {spec.experiment!r} "
                      f"(known: {', '.join(experiment_ids(True))})")
        return errors  # nothing else is checkable without the schema

    if not spec.axes and spec.mode != "ablate":
        errors.append("no axes declared")
    seen: set[str] = set()
    for axis, values in spec.axes:
        if axis in seen:
            errors.append(f"duplicate axis {axis!r}")
        seen.add(axis)
        if axis == "scale":
            errors.append("'scale' cannot be an axis; set the spec-wide "
                          "scale (or sweep a duration-like parameter)")
            continue
        if not values:
            errors.append(f"axis {axis!r} has no values")
        errors.extend(_check_values(experiment, axis, values))
    for name, value in spec.base:
        if name in seen and spec.mode != "ablate":
            # in ablate mode the base value IS the axis's baseline,
            # overridden one cell at a time — shadowing is the point
            errors.append(f"base parameter {name!r} shadows an axis")
        errors.extend(_check_values(experiment, name, (value,)))
    if spec.seeds:
        if "seed" in seen or any(n == "seed" for n, _ in spec.base):
            errors.append("'seeds' conflicts with an explicit seed "
                          "axis/base parameter")
        errors.extend(_check_values(experiment, "seed", spec.seeds))

    if spec.mode == "zip" and spec.axes:
        lengths = {axis: len(values) for axis, values in spec.axes}
        if len(set(lengths.values())) > 1:
            errors.append(f"zip mode needs equal-length axes, got {lengths}")
    if spec.mode == "ablate" and not spec.axes:
        errors.append("ablate mode without axes has nothing to ablate")
    return errors


def _check_values(experiment: ExperimentSpec, name: str,
                  values: Any) -> list[str]:
    """Type/range-check candidate values against the declared schema."""
    errors = []
    declared = {p.name for p in experiment.params}
    param = experiment.param(name)
    if param is None:
        if declared:
            errors.append(
                f"parameter {name!r} is not in {experiment.id}'s schema "
                f"(declared: {', '.join(sorted(declared | {'scale'}))})")
        return errors  # undeclared schema: permissive
    for value in values:
        try:
            param.check(value, where=f"{experiment.id}: ")
        except (TypeError, ValueError) as exc:
            errors.append(str(exc))
    return errors


def validate_spec(spec: SweepSpec) -> None:
    """Raise :class:`SweepValidationError` unless ``spec`` is valid."""
    errors = spec_errors(spec)
    if errors:
        raise SweepValidationError(spec.name or "<unnamed>", errors)
