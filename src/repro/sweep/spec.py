"""Sweep/ablation specs: plain data, from dicts or TOML/JSON files.

A :class:`SweepSpec` declares *what to compare* — one registered
experiment, a set of axes with candidate values, an expansion mode —
and nothing about *how to run it* (jobs, caching, report paths are
CLI/library concerns).  The spec is frozen and canonically
serializable, so it can ride inside run manifests and sweep reports
and participate in digests.

Expansion modes (see :mod:`repro.sweep.expand`):

``grid``
    Cartesian product of all axes (the classic comparison matrix).
``zip``
    Axes advance in lockstep (all must have equal lengths) — paired
    configurations, like a tuned (ssthresh, dupack) frontier.
``ablate``
    One baseline task from ``base`` alone, plus one task per axis
    value that changes *only that axis* — the one-factor-at-a-time
    ablation study.

``seeds`` is an implicit extra grid axis bound to the experiment's
``seed`` parameter.  An :class:`AblationSpec` is just a ``SweepSpec``
whose mode defaults to ``ablate``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from ..experiments.common import canonical_json

__all__ = ["AblationSpec", "SweepSpec", "load_spec", "spec_from_dict"]

#: valid expansion modes
MODES = ("grid", "zip", "ablate")


def _freeze(value: Any) -> Any:
    """Lists (from TOML/JSON) become tuples so specs stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _pairs(mapping: Any, what: str) -> tuple[tuple[str, Any], ...]:
    if isinstance(mapping, tuple):
        return mapping
    if not isinstance(mapping, dict):
        raise TypeError(f"{what} must be a table/dict, "
                        f"got {type(mapping).__name__}")
    return tuple((str(k), _freeze(v)) for k, v in mapping.items())


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment sweep (plain data; see module doc)."""

    name: str
    experiment: str
    mode: str = "grid"
    #: (axis name, candidate values) in declaration order — the order
    #: is meaningful: grid expansion nests rightmost-fastest, and the
    #: first value of each axis is that axis's delta baseline
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    #: parameters shared by every task
    base: tuple[tuple[str, Any], ...] = ()
    #: implicit extra grid axis bound to the ``seed`` parameter
    seeds: tuple[int, ...] = ()
    #: sweep-wide scale handed to the orchestrator (tasks additionally
    #: apply the experiment's registered ``scale_factor``)
    scale: float = 1.0
    description: str = ""
    #: metric name the ranked table sorts by ("" = no ranked table)
    rank_by: str = ""
    rank_descending: bool = False
    #: "module:function" custom aggregation hook (see aggregate.py)
    aggregate: str = ""
    #: metrics surfaced per task in the report ("" entries = all
    #: shared numeric metrics)
    metrics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(
            (name, tuple(_freeze(v) for v in values))
            for name, values in _pairs(self.axes, "axes")))
        object.__setattr__(self, "base", _pairs(self.base, "base"))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "metrics", tuple(self.metrics))

    # -- views --------------------------------------------------------

    @property
    def axes_dict(self) -> dict[str, tuple[Any, ...]]:
        return dict(self.axes)

    @property
    def base_dict(self) -> dict[str, Any]:
        return dict(self.base)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe document (axes keep declaration order)."""
        doc = {
            "name": self.name,
            "experiment": self.experiment,
            "mode": self.mode,
            "axes": {name: list(values) for name, values in self.axes},
            "base": {name: value for name, value in self.base},
            "seeds": list(self.seeds),
            "scale": self.scale,
            "description": self.description,
            "report": {
                "rank_by": self.rank_by,
                "rank_descending": self.rank_descending,
                "aggregate": self.aggregate,
                "metrics": list(self.metrics),
            },
        }
        return json.loads(canonical_json(doc))

    def digest_payload(self) -> str:
        return canonical_json(self.to_dict())


@dataclass(frozen=True)
class AblationSpec(SweepSpec):
    """A one-factor-at-a-time ablation: ``SweepSpec`` with
    ``mode="ablate"`` as the default."""

    mode: str = "ablate"


#: spec keys that live under the optional ``[report]`` table in files
_REPORT_KEYS = ("rank_by", "rank_descending", "aggregate", "metrics")


def spec_from_dict(doc: dict[str, Any]) -> SweepSpec:
    """Build a spec from a plain dict (the TOML/JSON file shape).

    Top-level keys mirror the dataclass; report options may sit either
    at top level or under a ``report`` table.  Unknown keys raise
    ``TypeError`` — a typo'd key silently ignored would be a silently
    wrong sweep.
    """
    if not isinstance(doc, dict):
        raise TypeError(f"sweep spec must be a dict, "
                        f"got {type(doc).__name__}")
    data = dict(doc)
    report = data.pop("report", {})
    if not isinstance(report, dict):
        raise TypeError("report must be a table/dict")
    for key, value in report.items():
        if key == "descending":
            key = "rank_descending"
        if key not in _REPORT_KEYS:
            raise TypeError(f"unknown report option {key!r} "
                            f"(one of {', '.join(_REPORT_KEYS)})")
        data[key] = value
    known = {f.name for f in fields(SweepSpec)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise TypeError(f"unknown sweep-spec key(s): {', '.join(unknown)} "
                        f"(known: {', '.join(sorted(known))})")
    for required in ("name", "experiment"):
        if required not in data:
            raise TypeError(f"sweep spec needs a {required!r} key")
    data["metrics"] = tuple(data.get("metrics", ()))
    cls = AblationSpec if data.get("mode") == "ablate" else SweepSpec
    return cls(**data)


def load_spec(path: Any) -> SweepSpec:
    """Load a spec from a ``.toml`` or ``.json`` file.

    TOML needs Python 3.11+ (stdlib ``tomllib``); on older
    interpreters a clear error suggests the JSON spelling.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py3.10 only
            raise RuntimeError(
                f"reading {path} needs Python 3.11+ (stdlib tomllib); "
                "use the JSON spec format on older interpreters"
            ) from exc
        doc = tomllib.loads(text)
    elif path.suffix.lower() == ".json":
        doc = json.loads(text)
    else:
        raise ValueError(f"unsupported spec format {path.suffix!r} "
                         "(use .toml or .json)")
    return spec_from_dict(doc)
