"""Typed aggregation over expanded sweep cells.

Three first-class products, all deterministic given the cells:

* **per-axis deltas** — for every axis with more than one value,
  group the cells by that axis's value and compare the mean of every
  shared numeric metric against the axis's *first declared value* (the
  baseline).  This is the sweep-level answer to "what did changing X
  do, averaged over everything else?".
* **ranked table** — cells ordered by one metric
  (``spec.rank_by``), ascending by default (ranks are
  distances/scores more often than rewards).
* **custom aggregation** — a ``module:function`` hook named by the
  spec, for experiment-specific tables the generic machinery cannot
  know (e.g. the arena's fairness-ranked controller table).  The hook
  receives ``[(axes_dict, ExperimentResult), ...]`` and returns a dict
  with optional ``rows`` / ``metrics`` / ``markdown`` keys.

Regression detection reuses the perf gate's verdict machinery
(:mod:`repro.runner.perf_gate`) verbatim, so a sweep report's verdict
and CI's ``python -m repro.runner.perf_gate`` agree by construction.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Optional

from ..experiments.common import ExperimentResult
from .expand import SweepTask
from .spec import SweepSpec

__all__ = [
    "SweepCell",
    "axis_deltas",
    "collect_cells",
    "ranked_rows",
    "regression_section",
    "run_custom_aggregate",
    "shared_numeric_metrics",
]


@dataclass
class SweepCell:
    """One task joined with its outcome."""

    task: SweepTask
    status: str
    result: Optional[ExperimentResult]
    result_digest: Optional[str]
    cache_hit: bool
    wall_s: float

    @property
    def ok(self) -> bool:
        return self.status == "ok" and self.result is not None


def collect_cells(tasks: list[SweepTask], outcomes) -> list[SweepCell]:
    """Join expanded tasks with orchestrator outcomes, task order."""
    by_id = {o.id: o for o in outcomes}
    cells = []
    for task in tasks:
        outcome = by_id[task.id]
        cells.append(SweepCell(
            task=task, status=outcome.status, result=outcome.result,
            result_digest=outcome.result_digest,
            cache_hit=outcome.cache_hit, wall_s=outcome.wall_s))
    return cells


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def shared_numeric_metrics(cells: list[SweepCell],
                           wanted: tuple[str, ...] = ()) -> list[str]:
    """Metric names carried by *every* ok cell with a numeric value.

    ``wanted`` restricts (and orders) the selection; otherwise all
    shared numeric metrics, sorted by name.
    """
    ok = [c for c in cells if c.ok]
    if not ok:
        return []
    shared: Optional[set[str]] = None
    for cell in ok:
        keys = {k for k, v in cell.result.metrics.items() if _numeric(v)}
        shared = keys if shared is None else shared & keys
    shared = shared or set()
    if wanted:
        return [name for name in wanted if name in shared]
    return sorted(shared)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def axis_deltas(spec: SweepSpec, cells: list[SweepCell]) -> list[dict]:
    """Per-axis deltas of every shared numeric metric (see module doc).

    One entry per axis with >1 distinct declared value (the implicit
    ``seeds`` axis included); each entry carries per-value group means
    and their delta against the axis's first declared value.
    """
    metrics = shared_numeric_metrics(cells, spec.metrics)
    axes: list[tuple[str, tuple[Any, ...]]] = [
        (name, values) for name, values in spec.axes if len(values) > 1]
    if len(spec.seeds) > 1:
        axes.append(("seed", spec.seeds))
    out: list[dict] = []
    for axis, declared in axes:
        groups = []
        baseline_means: dict[str, float] = {}
        for value in declared:
            members = [c for c in cells
                       if c.ok and c.task.axes_dict.get(axis) == value]
            if not members:
                continue
            means = {m: round(_mean([c.result.metrics[m] for c in members]),
                              6)
                     for m in metrics}
            group = {"value": value, "n": len(members), "means": means}
            if not groups:
                baseline_means = means
            else:
                group["deltas"] = {
                    m: round(means[m] - baseline_means[m], 6)
                    for m in metrics}
            groups.append(group)
        if groups:
            out.append({"axis": axis, "baseline": groups[0]["value"],
                        "groups": groups})
    return out


def ranked_rows(spec: SweepSpec, cells: list[SweepCell]) -> list[dict]:
    """Cells ranked by ``spec.rank_by`` (empty when unset or when no
    cell carries the metric).  Ties break on the task id."""
    if not spec.rank_by:
        return []
    scored = [(c.result.metrics[spec.rank_by], c)
              for c in cells if c.ok and spec.rank_by in c.result.metrics
              and _numeric(c.result.metrics[spec.rank_by])]
    scored.sort(key=lambda sc: ((-sc[0] if spec.rank_descending else sc[0]),
                                sc[1].task.id))
    return [
        {"rank": rank, "task": cell.task.id, **cell.task.axes_dict,
         spec.rank_by: score}
        for rank, (score, cell) in enumerate(scored, start=1)
    ]


def run_custom_aggregate(spec: SweepSpec,
                         cells: list[SweepCell]) -> Optional[dict]:
    """Resolve and run the spec's ``module:function`` hook (None when
    the spec names none).  The hook sees only ok cells."""
    if not spec.aggregate:
        return None
    module, _, func = spec.aggregate.partition(":")
    if not func:
        raise ValueError(f"aggregate hook {spec.aggregate!r} must be "
                         "'module:function'")
    fn = getattr(importlib.import_module(module), func)
    payload = [(c.task.axes_dict, c.result) for c in cells if c.ok]
    out = fn(payload)
    if not isinstance(out, dict):
        raise TypeError(f"aggregate hook {spec.aggregate!r} returned "
                        f"{type(out).__name__}, expected dict")
    unknown = sorted(set(out) - {"rows", "metrics", "markdown"})
    if unknown:
        raise ValueError(f"aggregate hook {spec.aggregate!r} returned "
                         f"unknown key(s): {', '.join(unknown)}")
    return out


def regression_section(baseline_path: str, *,
                       events_per_sec: Optional[float] = None,
                       scale_series: Optional[dict] = None,
                       regression_threshold: float = 0.20,
                       scale_regression_threshold: float = 0.50) -> dict:
    """Regression verdict against a committed ``BENCH_RESULTS.json``.

    Delegates to :func:`repro.runner.perf_gate.evaluate` (engine
    events/sec, when a fresh measurement is supplied) and
    :func:`~repro.runner.perf_gate.evaluate_series` (per-cell scale
    series, when the sweep produced one) — the same functions CI's
    perf gate runs, so the two verdicts agree on identical inputs.
    Missing-history cells **seed** rather than fail, exactly like the
    gate.
    """
    from ..runner import perf_gate

    try:
        baseline = perf_gate.load_baseline(baseline_path)
        baseline_series = perf_gate.load_scale_baseline(baseline_path)
    except (FileNotFoundError, ValueError):
        return {"status": "skipped", "baseline": str(baseline_path),
                "reasons": [f"no readable baseline at {baseline_path}"]}

    section: dict[str, Any] = {"status": "ok",
                               "baseline": str(baseline_path),
                               "reasons": []}
    if events_per_sec is not None:
        engine = perf_gate.evaluate(
            events_per_sec, baseline,
            regression_threshold=regression_threshold)
        section["engine"] = engine
        section["reasons"] += engine["reasons"]
        section["status"] = engine["status"]
    if scale_series:
        series = perf_gate.evaluate_series(
            scale_series, baseline_series,
            regression_threshold=scale_regression_threshold)
        section["scale"] = series
        section["reasons"] += series["reasons"]
        if series["status"] == "fail":
            section["status"] = "fail"
    return section
