"""Declarative sweep/ablation DSL over the experiment orchestrator.

A sweep is plain data — a :class:`SweepSpec` built in Python, from a
dict, or loaded from a TOML/JSON file — naming one registered
experiment, the parameter axes to vary, and an expansion mode
(``grid`` / ``zip`` / ``ablate``).  Expansion produces ordinary
orchestrator tasks (cached, isolated, retried); aggregation produces
per-axis deltas, a ranked table, optional experiment-specific tables,
and a regression verdict that reuses the perf gate's machinery.

Library use::

    from repro.sweep import sweep
    run = sweep("examples/sweeps/arena_matrix.toml", jobs=4, scale=0.05)
    print(run.report["ranked"])

CLI use::

    python -m repro.sweep run examples/sweeps/arena_matrix.toml -j auto
"""

from .aggregate import SweepCell, axis_deltas, ranked_rows
from .expand import SweepTask, expand
from .report import (
    SWEEP_REPORT_SCHEMA,
    build_report,
    render_markdown,
    report_digest,
)
from .run import SweepRun, sweep
from .spec import AblationSpec, SweepSpec, load_spec, spec_from_dict
from .validate import SweepValidationError, spec_errors, validate_spec

__all__ = [
    "AblationSpec",
    "SWEEP_REPORT_SCHEMA",
    "SweepCell",
    "SweepRun",
    "SweepSpec",
    "SweepTask",
    "SweepValidationError",
    "axis_deltas",
    "build_report",
    "expand",
    "load_spec",
    "ranked_rows",
    "render_markdown",
    "report_digest",
    "spec_errors",
    "spec_from_dict",
    "sweep",
    "validate_spec",
]
