"""``python -m repro.sweep`` — run declarative sweep/ablation specs.

Examples::

    python -m repro.sweep validate examples/sweeps/arena_matrix.toml
    python -m repro.sweep expand examples/sweeps/resilience_matrix.toml
    python -m repro.sweep run examples/sweeps/ci_smoke.toml \
        -j 2 --scale 0.05 --json report.json --report report.md

Exit status: 0 on success, 1 when any cell failed or the regression
gate failed, 2 on usage/validation errors (bad spec file, unknown
experiment, out-of-schema axis value).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from ..runner.cache import DEFAULT_CACHE_DIR
from ..runner.events import event_printer
from ..runner.manifest import save_manifest
from ..runner.orchestrator import auto_jobs
from .expand import expand
from .report import render_markdown
from .run import DEFAULT_BASELINE, sweep
from .spec import load_spec
from .validate import SweepValidationError, spec_errors

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Declarative sweep/ablation specs over the "
                    "experiment orchestrator.")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="check a spec against the experiment registry")
    validate.add_argument("spec", help="path to a .toml or .json sweep spec")

    show = sub.add_parser(
        "expand", help="print the expanded task matrix without running")
    show.add_argument("spec", help="path to a .toml or .json sweep spec")

    run = sub.add_parser("run", help="expand and run a spec")
    run.add_argument("spec", help="path to a .toml or .json sweep spec")
    run.add_argument("-j", "--jobs", default="1",
                     help="worker processes, or 'auto' for one per core "
                          "(default: 1)")
    run.add_argument("--scale", type=float, default=None,
                     help="override the spec's scale (e.g. 0.05 for a "
                          "smoke run)")
    run.add_argument("--no-cache", action="store_true",
                     help="always recompute; do not touch the result cache")
    run.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                     help=f"cache location (default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="also write the run manifest (with the sweep "
                          "block) to PATH")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="write the pgmcc.sweep-report/v1 JSON document")
    run.add_argument("--report", default=None, metavar="PATH",
                     help="write the markdown report (use '-' for stdout)")
    run.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                     metavar="PATH",
                     help="BENCH_RESULTS.json to gate against (default: "
                          f"{DEFAULT_BASELINE}; missing file skips the "
                          "gate)")
    run.add_argument("--probe", action="store_true",
                     help="also measure fresh engine events/sec for the "
                          "regression gate's throughput check")
    run.add_argument("--timeout", type=float, default=1800.0,
                     help="per-cell timeout in seconds (default: 1800; "
                          "0 disables)")
    run.add_argument("--retries", type=int, default=1,
                     help="retries per failing cell (default: 1)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress telemetry on stderr")
    return parser


def _load(path: str):
    """Spec from a path, with CLI-grade errors (None on failure)."""
    try:
        return load_spec(path)
    except (OSError, ValueError, TypeError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _validate(path: str) -> int:
    spec = _load(path)
    if spec is None:
        return 2
    errors = spec_errors(spec)
    if errors:
        print(f"{path}: {len(errors)} problem(s)", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2
    try:
        tasks = expand(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{path}: ok ({spec.name!r}: {len(tasks)} task(s) over "
          f"{spec.experiment}, mode {spec.mode})")
    return 0


def _expand(path: str) -> int:
    spec = _load(path)
    if spec is None:
        return 2
    try:
        tasks = expand(spec)
    except (SweepValidationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for task in tasks:
        kwargs = ", ".join(f"{k}={v!r}"
                           for k, v in task.spec.kwargs)
        print(f"{task.id:<50}  {kwargs}")
    print(f"{len(tasks)} task(s)")
    return 0


def _run(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    if spec is None:
        return 2
    errors = spec_errors(spec)
    if errors:
        print(f"{args.spec}: {len(errors)} problem(s)", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2
    jobs = auto_jobs() if args.jobs == "auto" else max(1, int(args.jobs))
    baseline = args.baseline if args.baseline else None

    result = sweep(
        spec, jobs=jobs, scale=args.scale,
        cache_dir=None if args.no_cache else args.cache_dir,
        baseline=baseline, probe_engine=args.probe,
        timeout=args.timeout or None, retries=args.retries,
        on_event=None if args.quiet else event_printer())

    if args.manifest:
        save_manifest(result.manifest, args.manifest)
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.report, indent=2, sort_keys=True)
                        + "\n")
    markdown = render_markdown(result.report)
    if args.report == "-":
        print(markdown)
    elif args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(markdown + "\n")

    totals = result.report["totals"]
    print(f"{totals['ok']}/{totals['tasks']} ok, {totals['failed']} failed, "
          f"{result.report['run']['cache_hits']} cache hits")
    print(f"report digest: {result.report['report_digest']}")
    regression = result.report.get("regression")
    if regression:
        print(f"regression vs {regression['baseline']}: "
              f"{regression['status'].upper()}")
        for reason in regression.get("reasons", []):
            print(f"  - {reason}")
    for cell in result.cells:
        if cell.status == "failed":
            print(f"--- FAILED {cell.task.id} ---", file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        return _validate(args.spec)
    if args.command == "expand":
        return _expand(args.spec)
    return _run(args)
