"""Spec -> orchestrator tasks: deterministic matrix expansion.

Each expanded task is a plain
:class:`~repro.experiments.common.ExperimentSpec` (the orchestrator's
native unit), so a sweep inherits everything PR 4 built — worker
isolation, retries, manifests, and the content-addressed result cache.
A sweep task's cache key is the same as any other task's for the same
``module:func`` + kwargs + schema, so sweeps, benches and plain runner
runs share results.

Task ids are deterministic and human-readable::

    arena-matrix/controller=pgmcc,scenario=fault
    resilience-matrix/base                       (ablate baseline)
    resilience-matrix/liveness=False,seed=31

so two expansions of the same spec produce identical id/kwargs lists
regardless of host, hash seed, or parallelism — the foundation of the
digest-stable sweep report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from ..experiments.common import ExperimentSpec
from .spec import SweepSpec
from .validate import validate_spec

__all__ = ["SweepTask", "expand"]


@dataclass(frozen=True)
class SweepTask:
    """One expanded cell: its axis assignment plus the runnable spec."""

    id: str
    #: the varied parameters only (base parameters are in the spec's
    #: kwargs but not part of the cell's identity)
    axes: tuple[tuple[str, Any], ...]
    spec: ExperimentSpec

    @property
    def axes_dict(self) -> dict[str, Any]:
        return dict(self.axes)


def _fmt_value(value: Any) -> str:
    if isinstance(value, (tuple, list)):
        return "+".join(_fmt_value(v) for v in value)
    return str(value)


def _assignments(spec: SweepSpec) -> list[tuple[tuple[str, Any], ...]]:
    """Per-mode axis assignments, in deterministic declaration order."""
    axes = list(spec.axes)
    if spec.mode == "grid":
        names = [name for name, _ in axes]
        combos = itertools.product(*(values for _, values in axes))
        out = [tuple(zip(names, combo)) for combo in combos]
    elif spec.mode == "zip":
        out = [tuple((name, values[i]) for name, values in axes)
               for i in range(len(axes[0][1]) if axes else 0)]
    elif spec.mode == "ablate":
        out = [()]  # the baseline: base parameters only
        out += [((name, value),)
                for name, values in axes for value in values]
    else:  # pragma: no cover - caught by validate_spec
        raise ValueError(f"unknown mode {spec.mode!r}")
    if spec.seeds:
        out = [assignment + (("seed", seed),)
               for assignment in out for seed in spec.seeds]
    return out


def expand(spec: SweepSpec) -> list[SweepTask]:
    """Expand ``spec`` into orchestrator tasks (validates first).

    Raises :class:`~repro.sweep.validate.SweepValidationError` on an
    invalid spec and ``ValueError`` on a task-id collision (two cells
    whose assignments render identically).
    """
    from ..experiments.registry import get_experiment

    validate_spec(spec)
    experiment = get_experiment(spec.experiment)
    base = spec.base_dict

    tasks: list[SweepTask] = []
    seen: set[str] = set()
    for assignment in _assignments(spec):
        label = ",".join(f"{n}={_fmt_value(v)}" for n, v in assignment)
        task_id = f"{spec.name}/{label or 'base'}"
        if task_id in seen:
            raise ValueError(f"duplicate sweep task id {task_id!r} "
                             "(axes values render identically)")
        seen.add(task_id)
        kwargs = {**base, **dict(assignment)}
        synthesized = ExperimentSpec(
            id=task_id,
            module=experiment.module,
            func=experiment.func,
            scale_factor=experiment.scale_factor,
            kwargs=tuple(sorted(kwargs.items())),
            description=(f"{spec.experiment} cell of sweep "
                         f"{spec.name!r}"),
            params=experiment.params,
        )
        # the schema already vetted every axis value; this additionally
        # catches bad *base* combinations after merging
        synthesized.validate_kwargs(synthesized.call_kwargs(spec.scale))
        tasks.append(SweepTask(id=task_id, axes=assignment,
                               spec=synthesized))
    return tasks
