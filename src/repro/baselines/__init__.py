"""Comparison baselines from the paper's related work (§2.1).

Currently: equation-based single-rate multicast rate controllers, with
the naive loss aggregation that exhibits the drop-to-zero problem [23]
and the repaired worst-report aggregation.
"""

from .rate_controller import AGGREGATIONS, EquationRateSender

__all__ = ["AGGREGATIONS", "EquationRateSender"]
