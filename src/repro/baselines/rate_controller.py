"""Equation-based single-rate multicast controllers (§2.1 baselines).

The paper's related work describes rate-based schemes in which "the
sender uses loss reports to update the transmit rate" on coarse
timescales, with the rate computed from the TCP equilibrium equation
[8][15].  It also describes their failure mode: "an improper
aggregation of feedback is likely to cause the so called drop-to-zero
problem [23], where the sender's estimate of the loss rate is much
higher than the actual loss rate experienced at every single receiver"
(§2.1) — precisely what pgmcc's receiver-side filtering and
representative-based control avoid (§4.5).

:class:`EquationRateSender` implements that family behind an
``aggregation`` switch:

* ``"nak-count"`` — the naive source: session loss = NAKs heard per
  packet sent.  With N receivers suffering *uncorrelated* loss p, the
  source hears ≈ N·p NAKs per packet and its rate collapses like
  1/√(N·p): drop-to-zero.
* ``"max-report"`` — the repaired variant (what TFMCC-style protocols
  converged on): session loss = the worst receiver-filtered ``rx_loss``
  seen in the epoch, so the estimate is independent of the group size.

Both pace packets at the equation rate ``MSS / (RTT · √p)`` and update
once per epoch ("1 second or more" per the paper).  Receivers are the
ordinary PGM receivers in report-only mode; the controllers share
pgmcc's wire formats and differ only in the control discipline — which
is the comparison the paper draws.

For the same equation family run *through* pgmcc's session machinery
(acker election, ACK clocking, guard, telemetry) instead of as a
standalone sender, see the registered ``"tfrc"`` controller backend in
:mod:`repro.core.controllers` (docs/CONTROLLERS.md); EXP-ARENA ranks
it against the window backends head-to-head.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.loss_filter import SCALE
from ..pgm import constants as C
from ..pgm.packets import Nak, OData
from ..simulator.engine import Timer
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.trace import FlowTrace

AGGREGATIONS = ("nak-count", "max-report")


class EquationRateSender:
    """Rate-based multicast source driven by the TCP equation.

    Args:
        host: simulator host.
        group: multicast group address.
        tsi: session id (shares the PGM wire formats).
        aggregation: "nak-count" (naive, drop-to-zero prone) or
            "max-report" (worst receiver-filtered loss).
        rtt_estimate: control-loop RTT in seconds (these schemes have
            no per-packet feedback to measure it; the paper notes they
            work on coarse timescales).
        epoch: rate-update interval in seconds.
        min_rate_bps / max_rate_bps: rate clamps; ``min_rate_bps``
            keeps the probe alive so the estimate can recover.
        smoothing: EWMA gain on the aggregated loss estimate.
    """

    def __init__(
        self,
        host: Host,
        group: str,
        tsi: int,
        aggregation: str = "max-report",
        payload_size: int = C.DEFAULT_PAYLOAD,
        rtt_estimate: float = 0.5,
        epoch: float = 1.0,
        min_rate_bps: float = 8_000.0,
        max_rate_bps: float = 10_000_000.0,
        initial_rate_bps: float = 100_000.0,
        smoothing: float = 0.25,
        trace: Optional[FlowTrace] = None,
    ):
        if aggregation not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {aggregation!r}")
        self.host = host
        self.sim = host.sim
        self.group = group
        self.tsi = tsi
        self.aggregation = aggregation
        self.payload_size = payload_size
        self.rtt_estimate = rtt_estimate
        self.epoch = epoch
        self.min_rate_bps = min_rate_bps
        self.max_rate_bps = max_rate_bps
        self.rate_bps = initial_rate_bps
        self.smoothing = smoothing
        self.trace = trace if trace is not None else FlowTrace(f"eq-{aggregation}")

        self._next_seq = 0
        self._p_smoothed = 0.0
        # per-epoch counters (naive aggregation)
        self._epoch_packets = 0
        self._epoch_naks = 0
        #: most recent filtered report per receiver (max-report mode —
        #: holding the last value avoids sampling 0 on quiet epochs)
        self._last_reports: dict[str, int] = {}
        self._send_timer = Timer(self.sim, self._send_one)
        self._epoch_timer = Timer(self.sim, self._update_rate)
        self._closed = False
        self.packets_sent = 0
        self.naks_received = 0
        self.rate_history: list[tuple[float, float]] = []
        host.register_agent(C.PROTO, self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._send_timer.start(self._interval())
        self._epoch_timer.start(self.epoch)

    def close(self) -> None:
        self._closed = True
        self._send_timer.cancel()
        self._epoch_timer.cancel()

    def _interval(self) -> float:
        return self.payload_size * 8.0 / self.rate_bps

    # -- data path -----------------------------------------------------------

    def _send_one(self) -> None:
        if self._closed:
            return
        odata = OData(self.tsi, self._next_seq, 0, self.payload_size,
                      timestamp=self.sim.now)
        self.host.send(
            Packet(self.host.name, self.group, odata.wire_size(), odata, C.PROTO)
        )
        self.trace.log(self.sim.now, "data", self._next_seq, self.payload_size)
        self._next_seq += 1
        self.packets_sent += 1
        self._epoch_packets += 1
        self._send_timer.restart(self._interval())

    def handle_packet(self, packet: Packet) -> None:
        msg = packet.payload
        if isinstance(msg, Nak) and msg.tsi == self.tsi:
            self.naks_received += 1
            self._epoch_naks += 1
            self._last_reports[msg.report.rx_id] = msg.report.rx_loss
            self.trace.log(self.sim.now, "nak", msg.seq)

    # -- control loop ----------------------------------------------------------

    def _aggregate_loss(self) -> float:
        if self.aggregation == "nak-count":
            if self._epoch_packets == 0:
                return self._p_smoothed
            return min(1.0, self._epoch_naks / self._epoch_packets)
        # max-report: the worst receiver's most recent filtered
        # estimate.  Holding each receiver's last report keeps the
        # estimate defined through quiet epochs and independent of the
        # group size (each value is already smoothed at its receiver).
        if not self._last_reports:
            return self._p_smoothed
        return max(self._last_reports.values()) / SCALE

    def _update_rate(self) -> None:
        if self._closed:
            return
        sample = self._aggregate_loss()
        if sample == 0.0 and self._p_smoothed == 0.0:
            # No loss observed yet: probe upward multiplicatively
            # instead of evaluating the equation at p -> 0 (which would
            # blast the maximum rate into the path and poison every
            # receiver's loss filter before control even starts).
            self.rate_bps = min(self.max_rate_bps, self.rate_bps * 2.0)
            self.rate_history.append((self.sim.now, self.rate_bps))
            self.trace.log(self.sim.now, "rate-update", int(self.rate_bps))
            self._epoch_packets = 0
            self._epoch_naks = 0
            self._epoch_timer.restart(self.epoch)
            return
        self._p_smoothed += self.smoothing * (sample - self._p_smoothed)
        p = max(self._p_smoothed, 1.0 / SCALE)
        # the simplified TCP equation the paper quotes: T ∝ MSS/(RTT·√p)
        rate = self.payload_size * 8.0 * math.sqrt(1.5) / (
            self.rtt_estimate * math.sqrt(p)
        )
        self.rate_bps = min(self.max_rate_bps, max(self.min_rate_bps, rate))
        self.rate_history.append((self.sim.now, self.rate_bps))
        self.trace.log(self.sim.now, "rate-update", int(self.rate_bps))
        self._epoch_packets = 0
        self._epoch_naks = 0
        self._epoch_timer.restart(self.epoch)

    @property
    def loss_estimate(self) -> float:
        return self._p_smoothed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EquationRateSender {self.aggregation} "
            f"rate={self.rate_bps / 1000:.0f}kbit/s p={self._p_smoothed:.4f}>"
        )
