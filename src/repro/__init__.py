"""repro — a full reproduction of *pgmcc: a TCP-friendly single-rate
multicast congestion control scheme* (Luigi Rizzo, SIGCOMM 2000).

Subpackages:

* :mod:`repro.core` — pgmcc itself: loss filter, packet-based RTT,
  window/token controller, ACK-bitmap tracking, acker election.
* :mod:`repro.simulator` — discrete-event network simulator (the
  ns-2/dummynet substitute): links, queues, routing, multicast.
* :mod:`repro.pgm` — the PGM protocol substrate: packet formats,
  sender/receiver, network elements.
* :mod:`repro.tcp` — the TCP Reno/NewReno baseline.
* :mod:`repro.analysis` — throughput/fairness metrics and series.
* :mod:`repro.experiments` — one runner per figure of the paper's §4,
  plus ablations.
"""

__version__ = "1.0.0"

from . import analysis, core, pgm, simulator, tcp

__all__ = ["analysis", "core", "pgm", "simulator", "tcp", "__version__"]
